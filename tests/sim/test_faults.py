"""Fault plans, injector replay determinism, and link failure semantics."""

import pytest

from repro.net.link import Link, duplex
from repro.sim import Environment
from repro.sim.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan


# --------------------------------------------------------------------------
# Plans
# --------------------------------------------------------------------------

def test_outage_builder_pairs_failure_with_repair():
    plan = FaultPlan.server_outage("srv", at=2.0, down_for=3.0)
    assert [(e.at, e.kind, e.target) for e in plan.events] == [
        (2.0, FaultKind.SERVER_CRASH, "srv"),
        (5.0, FaultKind.SERVER_RESTART, "srv")]


def test_link_flap_builder_spaces_outages_by_period():
    plan = FaultPlan.link_flap("wan", first_down=1.0, down_for=2.0,
                               flaps=3, period=10.0)
    downs = [e.at for e in plan.events if e.kind is FaultKind.LINK_DOWN]
    ups = [e.at for e in plan.events if e.kind is FaultKind.LINK_UP]
    assert downs == [1.0, 11.0, 21.0]
    assert ups == [3.0, 13.0, 23.0]


def test_builders_validate_arguments():
    with pytest.raises(ValueError):
        FaultPlan.server_outage("srv", at=1.0, down_for=0.0)
    with pytest.raises(ValueError):       # a repair is not a failure
        FaultPlan.outage(FaultKind.LINK_UP, "l", at=0.0, down_for=1.0)
    with pytest.raises(ValueError):       # overlapping flaps
        FaultPlan.link_flap("l", first_down=0.0, down_for=2.0,
                            flaps=2, period=1.0)
    with pytest.raises(ValueError):
        FaultEvent(-1.0, FaultKind.LINK_DOWN, "l")
    with pytest.raises(ValueError):
        FaultPlan.seeded_flaps("l", seed=1, horizon=0.0,
                               mean_up=1.0, mean_down=1.0)


def test_seeded_plans_replay_identically():
    args = dict(target="wan", seed=42, horizon=200.0,
                mean_up=10.0, mean_down=2.0)
    a = FaultPlan.seeded_flaps(**args)
    b = FaultPlan.seeded_flaps(**args)
    c = FaultPlan.seeded_flaps(**{**args, "seed": 43})
    assert len(a) > 0 and a == b
    assert a != c
    kinds = [e.kind for e in a.events]    # strict down/up alternation
    assert kinds[0::2] == [FaultKind.LINK_DOWN] * (len(kinds) // 2)
    assert kinds[1::2] == [FaultKind.LINK_UP] * (len(kinds) // 2)
    assert all(e.at <= 200.0 for e in a.events)


def test_merged_plans_interleave_by_time():
    a = FaultPlan.link_flap("wan", first_down=1.0, down_for=1.0)
    b = FaultPlan.server_outage("srv", at=1.5, down_for=1.0)
    merged = a.merged(b)
    assert [e.at for e in merged.events] == [1.0, 1.5, 2.0, 2.5]


# --------------------------------------------------------------------------
# Link failure semantics
# --------------------------------------------------------------------------

def test_failed_link_stalls_traffic_until_restore():
    env = Environment()
    link = Link(env, latency=0.01, bandwidth=1e6)
    done = []

    def sender(env):
        yield env.process(link.transmit(1000))
        done.append(env.now)

    def chaos(env):
        link.fail()
        link.fail()                       # idempotent
        yield env.timeout(5.0)
        link.restore()

    env.process(chaos(env))
    env.process(sender(env))
    env.run()
    assert done and done[0] > 5.0         # held for the whole outage
    assert link.outages == 1 and link.drops == 0


def test_outage_mid_serialization_stalls_the_inflight_message():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=1000.0)   # 1 KB/s: slow wire

    done = []

    def sender(env):
        yield env.process(link.transmit(2000))        # ~2 s to serialize
        done.append(env.now)

    def chaos(env):
        yield env.timeout(1.0)            # message is on the wire now
        link.fail()
        yield env.timeout(10.0)
        link.restore()

    env.process(sender(env))
    env.process(chaos(env))
    env.run()
    assert done and done[0] >= 11.0


def test_drop_on_fail_loses_the_message_instead_of_stalling():
    env = Environment()
    link = Link(env, latency=0.01, bandwidth=1e6)
    link.drop_on_fail = True
    done = []

    def sender(env):
        yield env.process(link.transmit(1000))
        done.append(env.now)              # pragma: no cover - must not run

    def chaos(env):
        link.fail()
        yield env.timeout(5.0)
        link.restore()                    # repair does NOT resurrect drops

    env.process(chaos(env))
    env.process(sender(env))
    env.run()
    assert not done
    assert link.drops == 1 and link.messages_sent == 0


# --------------------------------------------------------------------------
# Injector
# --------------------------------------------------------------------------

def test_injector_acts_on_duplex_pairs_and_records_timeline():
    env = Environment()
    pair = duplex(env, 0.01, 1e6, name="wan")
    injector = FaultInjector(env)
    injector.attach("wan", pair)
    injector.schedule(FaultPlan.link_flap("wan", first_down=1.0,
                                          down_for=2.0))
    env.run()
    assert injector.timeline == [(1.0, "link-down", "wan"),
                                 (3.0, "link-up", "wan")]
    assert all(link.outages == 1 and not link.failed for link in pair)


def test_injector_rejects_unknown_targets_and_duplicate_names():
    env = Environment()
    injector = FaultInjector(env)
    injector.attach("wan", Link(env, 0.0, 1e6))
    with pytest.raises(ValueError):
        injector.attach("wan", Link(env, 0.0, 1e6))
    with pytest.raises(KeyError):         # fail fast, before running
        injector.schedule(FaultPlan.link_flap("lan", first_down=1.0,
                                              down_for=1.0))
    assert injector.timeline == []


def test_same_seed_replays_identical_timeline_under_traffic():
    def run_once():
        env = Environment()
        link = Link(env, latency=0.005, bandwidth=1e6)
        injector = FaultInjector(env)
        injector.attach("wan", link)
        injector.schedule(FaultPlan.seeded_flaps(
            "wan", seed=7, horizon=30.0, mean_up=3.0, mean_down=1.0))
        arrivals = []

        def traffic(env):
            for _ in range(40):
                yield env.process(link.transmit(4096))
                arrivals.append(env.now)

        env.process(traffic(env))
        env.run()
        return injector.timeline, arrivals

    assert run_once() == run_once()
