"""Unit tests for resource/store primitives."""

import pytest

from repro.sim import Environment, FifoResource, PriorityResource, SimulationError, Store


def test_resource_grants_immediately_when_free():
    env = Environment()
    res = FifoResource(env, capacity=1)
    granted = []

    def proc(env):
        req = res.request()
        yield req
        granted.append(env.now)
        res.release(req)

    env.process(proc(env))
    env.run()
    assert granted == [0.0]


def test_resource_serializes_contenders_fifo():
    env = Environment()
    res = FifoResource(env, capacity=1)
    order = []

    def proc(env, name, hold):
        req = res.request()
        yield req
        order.append((name, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(proc(env, "a", 2))
    env.process(proc(env, "b", 3))
    env.process(proc(env, "c", 1))
    env.run()
    assert order == [("a", 0), ("b", 2), ("c", 5)]


def test_resource_capacity_two_admits_two():
    env = Environment()
    res = FifoResource(env, capacity=2)
    order = []

    def proc(env, name):
        req = res.request()
        yield req
        order.append((name, env.now))
        yield env.timeout(10)
        res.release(req)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_counts():
    env = Environment()
    res = FifoResource(env, capacity=1)

    def holder(env):
        req = res.request()
        yield req
        assert res.count == 1
        yield env.timeout(5)
        res.release(req)

    def waiter(env):
        yield env.timeout(1)
        req = res.request()
        assert res.queue_length == 1
        yield req
        res.release(req)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert res.count == 0
    assert res.queue_length == 0


def test_release_unheld_raises():
    env = Environment()
    res = FifoResource(env)
    other = FifoResource(env)
    req = other.request()
    with pytest.raises(SimulationError):
        res.release(req)


def test_release_queued_request_cancels_it():
    env = Environment()
    res = FifoResource(env, capacity=1)
    held = res.request()          # grabs the slot
    queued = res.request()        # waits
    assert res.queue_length == 1
    res.release(queued)           # abandon before grant
    assert res.queue_length == 0
    res.release(held)
    assert res.count == 0


def test_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        FifoResource(env, capacity=0)


def test_request_context_manager_releases():
    env = Environment()
    res = FifoResource(env, capacity=1)
    order = []

    def proc(env, name):
        with (yield res.request()):
            order.append((name, env.now))
            yield env.timeout(1)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert order == [("a", 0), ("b", 1)]


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request(priority=0)
        yield req
        yield env.timeout(5)
        res.release(req)

    def contender(env, name, prio):
        yield env.timeout(1)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        res.release(req)

    env.process(holder(env))
    env.process(contender(env, "low", 5))
    env.process(contender(env, "high", 1))
    env.process(contender(env, "mid", 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_ties_served_in_request_order():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(2)
        res.release(req)

    def contender(env, name):
        yield env.timeout(1)
        req = res.request(priority=7)
        yield req
        order.append(name)
        res.release(req)

    env.process(holder(env))
    for name in "xyz":
        env.process(contender(env, name))
    env.run()
    assert order == ["x", "y", "z"]


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("m1")
    store.put("m2")
    got = []

    def proc(env):
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(proc(env))
    env.run()
    assert got == ["m1", "m2"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(4)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("late", 4)]


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, name):
        item = yield store.get()
        got.append((name, item))

    def producer(env):
        yield env.timeout(1)
        store.put(1)
        store.put(2)

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))
    env.process(producer(env))
    env.run()
    assert got == [("first", 1), ("second", 2)]


def test_store_cancel_get():
    env = Environment()
    store = Store(env)
    ev = store.get()
    store.cancel(ev)
    store.put("item")
    assert store.peek_all() == ["item"]
    assert not ev.triggered


def test_store_len():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    assert len(store) == 1
