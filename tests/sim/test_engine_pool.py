"""Timeout free-list pool: recycling must be invisible to models.

A fired :class:`Timeout` nobody references is recycled through
``Environment._timeout_pool`` instead of the allocator.  These tests
pin the safety rules: held timeouts are never recycled, recycled ones
carry fresh state, and pooling changes neither schedules nor
validation.
"""

import pytest

from repro.sim import AllOf, Environment
from repro.sim.engine import _TIMEOUT_POOL_MAX


def _drain(env, n=50):
    """Fire ``n`` throwaway concurrent timeouts so the pool has
    inventory (sequential ones would recycle a single object)."""
    def one(env, i):
        yield env.timeout(0.001 * (1 + i))

    for i in range(n):
        env.process(one(env, i))
    env.run()


def test_fired_timeouts_are_recycled():
    env = Environment()
    _drain(env)
    assert env._timeout_pool
    recycled = env._timeout_pool[-1]
    t = env.timeout(1.5, value="fresh")
    assert t is recycled
    assert t.delay == 1.5
    assert t.callbacks == []
    assert not t.processed


def test_held_timeout_is_not_recycled():
    env = Environment()
    held = []

    def proc(env):
        t = env.timeout(1, value="keep")
        held.append(t)
        yield t

    env.process(proc(env))
    env.run()
    # The model still references the fired timeout: it must not be in
    # the pool, and its settled value must survive later activity.
    assert held[0] not in env._timeout_pool
    _drain(env)
    assert held[0].value == "keep"
    assert held[0].processed


def test_condition_member_timeouts_keep_their_values():
    env = Environment()

    def proc(env):
        got = yield AllOf(env, [env.timeout(1, "a"), env.timeout(2, "b")])
        return got

    p = env.process(proc(env))
    _drain(env)   # interleave plenty of recyclable traffic
    env.run()
    assert p.value == ["a", "b"]


def test_recycled_timeout_value_and_ordering():
    env = Environment()
    _drain(env)              # pool warmed; clock parked at drain end
    base = env.now
    order = []

    def proc(env, tag, delay):
        got = yield env.timeout(delay, value=tag)
        order.append((got, env.now))

    env.process(proc(env, "x", 2))
    env.process(proc(env, "y", 1))
    env.process(proc(env, "z", 1))
    env.run()
    # Same-delay recycled timeouts keep creation order (fresh seq each).
    assert order == [("y", base + 1), ("z", base + 1), ("x", base + 2)]


def test_pool_path_rejects_negative_delay():
    env = Environment()
    _drain(env)
    assert env._timeout_pool
    with pytest.raises(ValueError):
        env.timeout(-0.5)


def test_pool_is_bounded():
    env = Environment()
    _drain(env, n=_TIMEOUT_POOL_MAX + 100)
    assert len(env._timeout_pool) <= _TIMEOUT_POOL_MAX


def test_zero_delay_recycling_matches_fresh_schedule():
    def storm(env):
        log = []

        def proc(env, tag):
            for i in range(5):
                yield env.timeout(0)
                yield env.timeout(0.25)
                log.append((tag, i, env.now))

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        return log

    # A pre-warmed pool (recycled objects) and a cold one (fresh
    # allocations) must produce identical schedules.
    cold = Environment()
    warm = Environment()
    _drain(warm)             # pool warmed; clock parked at drain end
    warm_start = warm.now
    warm_seq_base = warm.events_scheduled
    cold_log = storm(cold)
    warm_log = storm(warm)
    assert [(t, i) for t, i, _ in cold_log] == \
        [(t, i) for t, i, _ in warm_log]
    for (_, _, tc), (_, _, tw) in zip(cold_log, warm_log):
        assert tw - warm_start == pytest.approx(tc, abs=1e-12)
    assert (warm.events_scheduled - warm_seq_base) == cold.events_scheduled
