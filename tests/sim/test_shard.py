"""Topology-island sharding: partitioning and deterministic merging."""

from repro.sim import Environment, partition_islands, run_islands


# ------------------------------------------------------------- partitioning

def test_disjoint_resources_stay_separate():
    islands = partition_islands([{"a"}, {"b"}, {"c"}])
    assert islands == [[0], [1], [2]]


def test_shared_resource_merges_members():
    islands = partition_islands([{"link1"}, {"link2"}, {"link1", "link3"}])
    assert islands == [[0, 2], [1]]


def test_transitive_overlap_merges():
    # 0-1 share a, 1-2 share b => one island, even though 0 and 2
    # share nothing directly.
    islands = partition_islands([{"a"}, {"a", "b"}, {"b"}, {"c"}])
    assert islands == [[0, 1, 2], [3]]


def test_empty_resource_set_forms_own_island():
    islands = partition_islands([set(), {"x"}, set(), {"x"}])
    assert islands == [[0], [1, 3], [2]]


def test_groups_ordered_by_smallest_member():
    islands = partition_islands([{"z"}, {"y"}, {"z"}, {"y"}])
    assert islands == [[0, 2], [1, 3]]


def test_partition_is_insensitive_to_resource_iteration_order():
    a = partition_islands([{"r1", "r2"}, {"r2", "r3"}, {"r9"}])
    b = partition_islands([{"r2", "r1"}, {"r3", "r2"}, {"r9"}])
    assert a == b == [[0, 1], [2]]


# -------------------------------------------------------------- run_islands

def _simulate_island(spec):
    """Module-level worker (picklable): run a tiny simulation."""
    env = Environment()
    ticks = []

    def proc(env):
        for i in range(spec["n"]):
            yield env.timeout(spec["delay"])
            ticks.append(env.now)

    env.process(proc(env))
    env.run()
    return {"island": spec["island"], "sim_seconds": env.now, "ticks": ticks}


def _specs():
    return [{"island": i, "n": 3 + i, "delay": 0.5 * (i + 1)}
            for i in range(4)]


def test_run_islands_serial_matches_direct_calls():
    expected = [_simulate_island(s) for s in _specs()]
    assert run_islands(_simulate_island, _specs(), processes=1) == expected


def test_run_islands_parallel_merges_deterministically():
    serial = run_islands(_simulate_island, _specs(), processes=1)
    parallel = run_islands(_simulate_island, _specs(), processes=2)
    assert parallel == serial            # merge order == args order


def test_run_islands_empty():
    assert run_islands(_simulate_island, [], processes=4) == []


def test_run_islands_single_item_runs_in_process():
    out = run_islands(_simulate_island, [_specs()[0]], processes=8)
    assert out == [_simulate_island(_specs()[0])]
