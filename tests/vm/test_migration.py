"""Tests for VM checkpointing and migration over GVFS (§6)."""

import pytest

from repro.core.session import GvfsSession, LocalMount, Scenario, ServerEndpoint
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.vm.cloning import CloneManager
from repro.vm.image import VmConfig, VmImage
from repro.vm.migration import MigrationManager
from repro.vm.monitor import VmMonitor
from tests.core.harness import SMALL_CACHE


class MigRig:
    """Two compute servers, one image server, one running VM."""

    def __init__(self, image_mb=2):
        self.testbed = Testbed(Environment(), n_compute=2)
        self.env = self.testbed.env
        self.endpoint = ServerEndpoint(self.env, self.testbed.wan_server)
        cfg = VmConfig(name="mobile", memory_mb=image_mb, disk_gb=0.01,
                       seed=41, persistent=False)
        self.image = VmImage.create(self.endpoint.export.fs, "/images/mobile",
                                    cfg)
        self.image.generate_metadata()
        self.sessions = [
            GvfsSession.build(self.testbed, Scenario.WAN_CACHED,
                              endpoint=self.endpoint, compute_index=i,
                              cache_config=SMALL_CACHE)
            for i in range(2)]
        self.monitors = [VmMonitor(self.env, self.testbed.compute[i])
                         for i in range(2)]
        self.manager = MigrationManager(
            self.env, self.monitors[0], self.sessions[0],
            self.monitors[1], self.sessions[1])

    def run(self, gen):
        box = {}

        def wrapper(env):
            box["value"] = yield env.process(gen)
            box["t"] = env.now

        self.env.process(wrapper(self.env))
        self.env.run()
        return box["value"], box["t"]

    def boot_vm(self):
        vm, _ = self.run(self.monitors[0].resume(self.sessions[0].mount,
                                                 "/images/mobile"))
        return vm


def test_checkpoint_persists_state_to_server():
    rig = MigRig()
    vm = rig.boot_vm()
    before = rig.image.memory_inode.mtime
    phases, _ = rig.run(rig.manager.checkpoint(vm, "/images/mobile"))
    assert set(phases) == {"suspend", "flush", "metadata"}
    assert not vm.running
    # The new memory state reached the image server...
    assert rig.image.memory_inode.mtime > before
    # ...and its meta-data was regenerated for the new content.
    raw = rig.endpoint.export.fs.read("/images/mobile/.mem.vmss.gvfs")
    from repro.core.metadata import FileMetadata
    meta = FileMetadata.from_bytes(raw)
    assert meta.file_size == vm.config.memory_bytes


def test_migrate_produces_running_vm_on_destination():
    rig = MigRig()
    vm = rig.boot_vm()
    result, _ = rig.run(rig.manager.migrate(vm, "/images/mobile",
                                            dest_dir="/migrated/mobile"))
    assert result.vm is not None
    assert result.vm.running
    assert result.vm.host is rig.testbed.compute[1]
    assert not vm.running
    assert result.total_seconds > 0
    assert "suspend" in result.phases and "instantiate" in result.phases


def test_migrated_memory_matches_checkpoint():
    rig = MigRig()
    vm = rig.boot_vm()
    rig.run(rig.manager.migrate(vm, "/images/mobile",
                                dest_dir="/migrated/mobile"))
    golden = rig.image.memory_inode.data
    dest_fs = rig.testbed.compute[1].local.fs
    copied = dest_fs.read("/migrated/mobile/mem.vmss")
    assert copied == golden.read(0, golden.size)


def test_migration_uses_compressed_channel():
    rig = MigRig(image_mb=4)
    vm = rig.boot_vm()
    dest_channel = rig.sessions[1].client_proxy.channel
    rig.run(rig.manager.migrate(vm, "/images/mobile"))
    assert dest_channel.fetches == 1
    assert dest_channel.bytes_on_wire < dest_channel.bytes_logical


def test_checkpoint_upload_is_compressed_when_state_cached():
    """When the source resumed through the channel, the new checkpoint
    is uploaded compressed (file-cache write-back) rather than
    block-by-block over the WAN."""
    rig = MigRig(image_mb=4)
    vm = rig.boot_vm()
    src_channel = rig.sessions[0].client_proxy.channel
    assert src_channel.fetches == 1  # resume pulled it into the cache
    rig.run(rig.manager.checkpoint(vm, "/images/mobile"))
    assert src_channel.uploads == 1


def test_downtime_far_below_full_state_staging():
    rig = MigRig(image_mb=64)
    vm = rig.boot_vm()
    result, _ = rig.run(rig.manager.migrate(vm, "/images/mobile"))
    # Comparator: moving the raw state twice (suspend upload + resume
    # download) at one uncompressed WAN stream.
    from repro.net.ssh import ScpTransfer
    scp = ScpTransfer(rig.env, rig.testbed.wan_route(0))
    staging_roundtrip = 2 * scp.transfer_time(rig.image.total_state_bytes)
    # GVFS migration wins on the data movement; the comparator excludes
    # staging's own suspend/resume fixed costs, so the bound is modest
    # here and grows with state size (the disk is never copied at all).
    assert result.downtime_seconds < staging_roundtrip * 0.7
