"""Integration tests for the cloning procedure over GVFS."""

import pytest

from repro.core.session import GvfsSession, LocalMount, Scenario, ServerEndpoint
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.vm.cloning import CloneManager
from repro.vm.image import VmConfig, VmImage
from repro.vm.monitor import VmMonitor
from tests.core.harness import SMALL_CACHE


class CloneRig:
    def __init__(self, metadata=True, image_mb=2):
        self.testbed = Testbed(Environment(), n_compute=1)
        self.env = self.testbed.env
        self.endpoint = ServerEndpoint(self.env, self.testbed.wan_server)
        cfg = VmConfig(name="golden", memory_mb=image_mb, disk_gb=0.01,
                       seed=21, persistent=False)
        self.image = VmImage.create(self.endpoint.export.fs,
                                    "/images/golden", cfg)
        if metadata:
            self.image.generate_metadata()
        self.session = GvfsSession.build(self.testbed, Scenario.WAN_CACHED,
                                         endpoint=self.endpoint,
                                         cache_config=SMALL_CACHE)
        compute = self.testbed.compute[0]
        self.monitor = VmMonitor(self.env, compute)
        self.manager = CloneManager(self.env, self.monitor,
                                    self.session.mount,
                                    LocalMount(compute.local))

    def run(self, gen):
        box = {}

        def wrapper(env):
            box["value"] = yield env.process(gen)

        self.env.process(wrapper(self.env))
        self.env.run()
        return box["value"]


def test_clone_produces_running_vm():
    rig = CloneRig()
    result = rig.run(rig.manager.clone("/images/golden", "/clones/c1"))
    assert result.vm is not None
    assert result.vm.running
    assert result.total_seconds > 0
    assert set(result.phases) == {"copy_config", "copy_memory", "link_disk",
                                  "configure", "resume"}


def test_clone_memory_copy_is_bit_identical():
    rig = CloneRig()
    rig.run(rig.manager.clone("/images/golden", "/clones/c1"))
    golden = rig.image.memory_inode.data
    local = rig.testbed.compute[0].local.fs
    copied = local.read("/clones/c1/mem.vmss")
    assert copied == golden.read(0, golden.size)


def test_clone_links_disk_instead_of_copying():
    rig = CloneRig()
    rig.run(rig.manager.clone("/images/golden", "/clones/c1"))
    local = rig.testbed.compute[0].local.fs
    assert local.readlink("/clones/c1/disk.vmdk") == "/images/golden/disk.vmdk"


def test_clone_config_customized():
    rig = CloneRig()
    rig.run(rig.manager.clone("/images/golden", "/clones/c1",
                              clone_name="userA-vm"))
    local = rig.testbed.compute[0].local.fs
    cfg = VmConfig.from_bytes(local.read("/clones/c1/vm.cfg"))
    assert cfg.name == "userA-vm"
    assert cfg.memory_mb == rig.image.config.memory_mb


def test_clone_redo_log_on_gvfs_mount():
    rig = CloneRig()
    rig.run(rig.manager.clone("/images/golden", "/clones/c1",
                              clone_name="c1"))
    # The redo log is created next to the golden disk on the mount
    # (write-back absorbs its writes), named per clone.
    proxy = rig.session.client_proxy
    assert proxy is not None
    # Either absorbed in the proxy or at the server already:
    server_fs = rig.endpoint.export.fs
    assert server_fs.exists("/images/golden/disk.vmdk.c1.REDO")


def test_second_clone_faster_than_first():
    rig = CloneRig()
    first = rig.run(rig.manager.clone("/images/golden", "/clones/c1"))
    second = rig.run(rig.manager.clone("/images/golden", "/clones/c2"))
    assert second.total_seconds < first.total_seconds
    assert second.phases["copy_memory"] < first.phases["copy_memory"]


def test_clone_uses_file_channel_when_metadata_present():
    rig = CloneRig(metadata=True)
    rig.run(rig.manager.clone("/images/golden", "/clones/c1"))
    assert rig.session.client_proxy.stats.channel_fetches == 1
    assert rig.session.client_proxy.stats.zero_filtered_reads > 0


def test_clone_without_metadata_goes_block_by_block():
    rig = CloneRig(metadata=False)
    rig.run(rig.manager.clone("/images/golden", "/clones/c1"))
    stats = rig.session.client_proxy.stats
    assert stats.channel_fetches == 0
    assert stats.block_cache_misses > 0


def test_metadata_clone_faster_than_block_clone():
    with_meta = CloneRig(metadata=True, image_mb=4)
    r1 = with_meta.run(with_meta.manager.clone("/images/golden", "/c/c1"))
    without = CloneRig(metadata=False, image_mb=4)
    r2 = without.run(without.manager.clone("/images/golden", "/c/c1"))
    assert r1.phases["copy_memory"] < r2.phases["copy_memory"] / 2


def test_cloned_vm_reads_golden_disk_content():
    rig = CloneRig()
    result = rig.run(rig.manager.clone("/images/golden", "/clones/c1"))
    vm = result.vm
    golden_disk = rig.image.disk_inode.data

    def proc(env):
        data = yield env.process(vm.redo.read(0, 4096))
        return data

    data = rig.run(proc(rig.env))
    assert data == golden_disk.read(0, 4096)


def test_clone_without_resume():
    rig = CloneRig()
    result = rig.run(rig.manager.clone("/images/golden", "/clones/c1",
                                       resume=False))
    assert result.vm is None
    assert "resume" not in result.phases
