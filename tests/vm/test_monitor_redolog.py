"""Tests for the VM monitor, guest I/O, redo logs and suspend/resume."""

import pytest

from repro.core.session import LocalMount
from repro.net.topology import Host
from repro.sim import Environment
from repro.storage.vfs import FileSystem
from repro.vm.image import GuestFile, VmConfig, VmImage
from repro.vm.monitor import VirtualMachine, VmMonitor
from repro.vm.redolog import RedoLog


SMALL = VmConfig(name="small", memory_mb=2, disk_gb=0.002, seed=3,
                 persistent=False)
SMALL_PERSISTENT = VmConfig(name="smallp", memory_mb=2, disk_gb=0.002,
                            seed=3, persistent=True)


class Rig:
    def __init__(self, config=SMALL):
        self.env = Environment()
        self.host = Host(self.env, "compute", cpus=2)
        self.mount = LocalMount(self.host.local)
        self.image = VmImage.create(self.host.local.fs, "/vm", config)
        self.monitor = VmMonitor(self.env, self.host)

    def run(self, gen):
        box = {}

        def wrapper(env):
            box["value"] = yield env.process(gen)
            box["t"] = env.now

        self.env.process(wrapper(self.env))
        self.env.run()
        return box["value"], box["t"]


def test_resume_reads_entire_memory_state_and_verifies():
    rig = Rig()
    golden = rig.image.memory_inode.data
    vm, t = rig.run(rig.monitor.resume(rig.mount, "/vm",
                                       verify_against=golden))
    assert isinstance(vm, VirtualMachine)
    assert vm.running
    assert t >= VmMonitor.DEVICE_INIT_SECONDS


def test_resume_nonpersistent_gets_redo_log():
    rig = Rig()
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    assert vm.redo is not None
    assert rig.host.local.fs.exists("/vm/disk.vmdk.REDO")


def test_resume_persistent_has_no_redo():
    rig = Rig(SMALL_PERSISTENT)
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    assert vm.redo is None


def test_resume_custom_redo_placement():
    rig = Rig()
    rig.host.local.fs.mkdir("/redos")
    vm, _ = rig.run(rig.monitor.resume(
        rig.mount, "/vm", redo_dir="/redos", redo_name="clone1.REDO"))
    assert rig.host.local.fs.exists("/redos/clone1.REDO")


def test_guest_read_scattered_blocks():
    rig = Rig(SMALL_PERSISTENT)
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    gf = GuestFile("app/data", 128 * 1024)

    def proc(env):
        yield env.process(vm.read_guest_file(gf))

    rig.run(proc(rig.env))
    assert vm.disk_bytes_read == 128 * 1024
    assert vm.guest_cache_misses == 16


def test_guest_cache_absorbs_rereads():
    rig = Rig(SMALL_PERSISTENT)
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    gf = GuestFile("app/data", 64 * 1024)

    def proc(env):
        yield env.process(vm.read_guest_file(gf))
        before = vm.disk_bytes_read
        yield env.process(vm.read_guest_file(gf))
        return before

    before, _ = rig.run(proc(rig.env))
    assert vm.disk_bytes_read == before  # all re-reads from guest cache
    assert vm.guest_cache_hits == 8


def test_guest_cache_capacity_evicts():
    rig = Rig(SMALL_PERSISTENT)
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    vm._guest_cache_capacity = 4
    gf = GuestFile("app/big", 128 * 1024)  # 16 blocks > capacity 4

    def proc(env):
        yield env.process(vm.read_guest_file(gf))
        yield env.process(vm.read_guest_file(gf))

    rig.run(proc(rig.env))
    assert vm.guest_cache_hits == 0  # everything evicted before re-read
    assert vm.disk_bytes_read == 2 * 128 * 1024


def test_guest_write_persistent_goes_to_vmdk():
    rig = Rig(SMALL_PERSISTENT)
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    gf = GuestFile("out/result", 32 * 1024)

    def proc(env):
        yield env.process(vm.write_guest_file(gf))

    rig.run(proc(rig.env))
    assert vm.disk_bytes_written == 32 * 1024
    assert vm.redo is None


def test_guest_write_nonpersistent_goes_to_redo():
    rig = Rig()
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    gf = GuestFile("out/result", 32 * 1024)

    def proc(env):
        yield env.process(vm.write_guest_file(gf))

    rig.run(proc(rig.env))
    assert vm.redo.blocks_logged == 4
    # The golden virtual disk is untouched.
    assert rig.image.disk_inode.data.materialized_chunks == 0


def test_fraction_reads_prefix():
    rig = Rig(SMALL_PERSISTENT)
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    gf = GuestFile("app/data", 160 * 1024)  # 20 blocks

    def proc(env):
        yield env.process(vm.read_guest_file(gf, fraction=0.5))

    rig.run(proc(rig.env))
    assert vm.disk_bytes_read == 80 * 1024


def test_suspend_writes_whole_memory_state():
    rig = Rig()
    vm, _ = rig.run(rig.monitor.resume(rig.mount, "/vm"))
    before = rig.image.memory_inode.mtime
    _, t = rig.run(rig.monitor.suspend(rig.mount, "/vm", vm))
    assert not vm.running
    assert rig.image.memory_inode.mtime > before
    assert rig.image.memory_inode.data.size == SMALL.memory_bytes


def test_resume_detects_corruption():
    rig = Rig()
    sabotaged = rig.image.memory_inode.data.copy()
    sabotaged.write(4096, b"\xFFtampered")
    box = {}

    def wrapper(env):
        try:
            yield env.process(rig.monitor.resume(rig.mount, "/vm",
                                                 verify_against=sabotaged))
        except AssertionError as exc:
            box["error"] = str(exc)

    rig.env.process(wrapper(rig.env))
    rig.env.run()
    assert "corruption" in box["error"]


# -- RedoLog directly ---------------------------------------------------------

class FakeFile:
    """Minimal in-memory file with the open-file generator interface."""

    def __init__(self, env, content=b""):
        self.env = env
        self.buf = bytearray(content)

    @property
    def size(self):
        return len(self.buf)

    def read(self, offset, count):
        yield self.env.timeout(0)
        return bytes(self.buf[offset:offset + count])

    def write(self, offset, data):
        yield self.env.timeout(0)
        self._put(offset, data)

    def write_sync(self, offset, data):
        yield self.env.timeout(0)
        self._put(offset, data)

    def _put(self, offset, data):
        if offset + len(data) > len(self.buf):
            self.buf.extend(bytes(offset + len(data) - len(self.buf)))
        self.buf[offset:offset + len(data)] = data


def run_env(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


def test_redolog_read_through_base():
    env = Environment()
    base = FakeFile(env, b"B" * 1024)
    redo = RedoLog(env, base, FakeFile(env), block_size=256)
    assert run_env(env, redo.read(100, 50)) == b"B" * 50
    assert redo.reads_from_base == 1


def test_redolog_write_then_read_overlay():
    env = Environment()
    base = FakeFile(env, b"B" * 1024)
    redo = RedoLog(env, base, FakeFile(env), block_size=256)
    run_env(env, redo.write(256, b"X" * 256))
    assert run_env(env, redo.read(256, 256)) == b"X" * 256
    assert run_env(env, redo.read(0, 256)) == b"B" * 256
    assert base.buf[256:512] == b"B" * 256  # base untouched


def test_redolog_partial_write_copies_base_block():
    env = Environment()
    base = FakeFile(env, b"B" * 1024)
    redo = RedoLog(env, base, FakeFile(env), block_size=256)
    run_env(env, redo.write(300, b"zz"))
    data = run_env(env, redo.read(256, 256))
    assert data[:44] == b"B" * 44
    assert data[44:46] == b"zz"
    assert data[46:] == b"B" * 210


def test_redolog_spanning_write():
    env = Environment()
    base = FakeFile(env, b"B" * 2048)
    redo = RedoLog(env, base, FakeFile(env), block_size=256)
    payload = bytes(range(256)) * 3
    run_env(env, redo.write(200, payload))
    assert run_env(env, redo.read(200, len(payload))) == payload
    assert redo.overlaid_blocks() == 4


def test_redolog_counts_and_log_growth():
    env = Environment()
    base = FakeFile(env, b"B" * 4096)
    redo = RedoLog(env, base, FakeFile(env), block_size=256)
    run_env(env, redo.write(0, b"A" * 512))
    run_env(env, redo.write(0, b"C" * 512))  # rewrite: no new log blocks
    assert redo.blocks_logged == 2
    assert redo.log_bytes == 512


def test_redolog_rejects_bad_args():
    env = Environment()
    with pytest.raises(ValueError):
        RedoLog(env, FakeFile(env), FakeFile(env), block_size=0)
    redo = RedoLog(env, FakeFile(env, b"x"), FakeFile(env), block_size=256)
    with pytest.raises(ValueError):
        run_env(env, redo.read(-1, 4))
    with pytest.raises(ValueError):
        run_env(env, redo.write(-1, b"a"))
