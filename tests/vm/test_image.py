"""Tests for VM image generation and configuration."""

import pytest

from repro.storage.vfs import CHUNK_SIZE, FileSystem
from repro.vm.image import (
    GuestFile,
    RandomContent,
    VmConfig,
    VmImage,
    make_memory_state,
    make_virtual_disk,
)


def test_random_content_deterministic():
    a = RandomContent(seed=5, zero_fraction=0.5)
    b = RandomContent(seed=5, zero_fraction=0.5)
    assert a.chunk(3) == b.chunk(3)
    assert a.is_zero(7) == b.is_zero(7)
    c = RandomContent(seed=6, zero_fraction=0.5)
    # Different seeds diverge somewhere in the first few chunks.
    assert any(a.chunk(i) != c.chunk(i) for i in range(8))


def test_random_content_zero_fraction_respected():
    src = RandomContent(seed=1, zero_fraction=0.9)
    zeros = sum(src.is_zero(i) for i in range(5000))
    assert 0.87 < zeros / 5000 < 0.93


def test_random_content_is_zero_consistent_with_chunk():
    src = RandomContent(seed=2, zero_fraction=0.5)
    for i in range(50):
        blob = src.chunk(i)
        assert (blob.count(0) == len(blob)) == src.is_zero(i)


def test_random_content_nonzero_is_half_entropy():
    """Non-zero chunks must be gzip-compressible like real memory pages."""
    import zlib
    src = RandomContent(seed=3, zero_fraction=0.0)
    blob = src.chunk(0)
    ratio = len(zlib.compress(blob, 6)) / len(blob)
    assert ratio < 0.65


def test_random_content_validates_fraction():
    with pytest.raises(ValueError):
        RandomContent(seed=1, zero_fraction=1.5)


def test_make_memory_state_sparse_and_sized():
    mem = make_memory_state(8 * 1024 * 1024, zero_fraction=0.9, seed=4)
    assert mem.size == 8 * 1024 * 1024
    assert mem.materialized_chunks == 0  # generated lazily


def test_make_virtual_disk_population():
    disk = make_virtual_disk(4 * 1024 * 1024, populated_fraction=0.5, seed=4)
    populated = sum(not disk.chunk_is_zero(i) for i in range(disk.n_chunks()))
    assert 0.4 < populated / disk.n_chunks() < 0.6


def test_vm_config_roundtrip():
    cfg = VmConfig(name="testvm", memory_mb=320, disk_gb=1.6,
                   os_name="Red Hat Linux 7.3", persistent=False, seed=42)
    again = VmConfig.from_bytes(cfg.to_bytes())
    assert again.name == cfg.name
    assert again.memory_mb == cfg.memory_mb
    assert abs(again.disk_gb - cfg.disk_gb) < 1e-9
    assert again.persistent == cfg.persistent
    assert again.seed == 42


def test_vm_config_sizes():
    cfg = VmConfig(name="x", memory_mb=320, disk_gb=1.6)
    assert cfg.memory_bytes == 320 * 1024 * 1024
    assert cfg.disk_bytes == int(1.6 * 1024 ** 3)


def test_image_create_layout():
    fs = FileSystem()
    image = VmImage.create(fs, "/images/golden", VmConfig(name="g", seed=1,
                                                          memory_mb=2,
                                                          disk_gb=0.001))
    assert fs.exists("/images/golden/vm.cfg")
    assert fs.exists("/images/golden/mem.vmss")
    assert fs.exists("/images/golden/disk.vmdk")
    assert image.memory_inode.data.size == 2 * 1024 * 1024


def test_image_load_reads_config_back():
    fs = FileSystem()
    VmImage.create(fs, "/images/g", VmConfig(name="g", seed=9, memory_mb=2,
                                             disk_gb=0.001))
    loaded = VmImage.load(fs, "/images/g")
    assert loaded.config.name == "g"
    assert loaded.config.seed == 9


def test_image_metadata_generation():
    fs = FileSystem()
    image = VmImage.create(fs, "/i/g", VmConfig(name="g", memory_mb=2,
                                                disk_gb=0.001, seed=2))
    meta = image.generate_metadata()
    assert fs.exists("/i/g/.mem.vmss.gvfs")
    assert meta.wants_file_channel
    assert 0.85 < meta.n_zero_blocks / meta.n_blocks < 0.97


def test_total_state_bytes():
    fs = FileSystem()
    image = VmImage.create(fs, "/i/g", VmConfig(name="g", memory_mb=2,
                                                disk_gb=0.001, seed=2))
    assert image.total_state_bytes > 2 * 1024 * 1024


def test_guest_file_block_offsets_deterministic_and_aligned():
    gf = GuestFile("usr/bin/prog", 1024 * 1024)
    a = gf.block_offsets(64 * 1024 * 1024, 8192, seed=3)
    b = gf.block_offsets(64 * 1024 * 1024, 8192, seed=3)
    assert a == b
    assert len(a) == 128
    assert all(off % 8192 == 0 for off in a)
    assert all(0 <= off < 64 * 1024 * 1024 for off in a)


def test_guest_file_layout_has_extents():
    """Blocks come in contiguous runs (extents), not pure random."""
    gf = GuestFile("data/file", 2 * 1024 * 1024)
    offsets = gf.block_offsets(512 * 1024 * 1024, 8192, seed=1)
    contiguous = sum(1 for i in range(1, len(offsets))
                     if offsets[i] == offsets[i - 1] + 8192)
    assert contiguous > len(offsets) // 2


def test_guest_file_different_names_different_layout():
    a = GuestFile("a", 256 * 1024).block_offsets(64 * 1024 * 1024, 8192, 1)
    b = GuestFile("b", 256 * 1024).block_offsets(64 * 1024 * 1024, 8192, 1)
    assert a != b


def test_guest_file_rejects_tiny_disk():
    with pytest.raises(ValueError):
        GuestFile("a", 100).block_offsets(0, 8192, 1)
