"""Tests for reproduction-report assembly."""

import pathlib

import pytest

from repro.analysis.report import SECTIONS, assemble_report


def test_assemble_from_partial_results(tmp_path):
    (tmp_path / "fig3_specseis.txt").write_text("FIG3 TABLE\n")
    (tmp_path / "table1_parallel.txt").write_text("TABLE1\n")
    report = assemble_report(tmp_path)
    assert "FIG3 TABLE" in report.text
    assert "TABLE1" in report.text
    assert "MISSING" in report.text
    assert not report.complete
    assert "fig3_specseis" in report.present
    assert "fig4_latex" in report.missing


def test_assemble_complete(tmp_path):
    for name, _ in SECTIONS:
        (tmp_path / f"{name}.txt").write_text(f"table {name}\n")
    report = assemble_report(tmp_path)
    assert report.complete
    assert "MISSING" not in report.text
    # Sections appear in the canonical order.
    positions = [report.text.index(f"table {name}") for name, _ in SECTIONS]
    assert positions == sorted(positions)


def test_assemble_empty_dir(tmp_path):
    report = assemble_report(tmp_path)
    assert not report.present
    assert len(report.missing) == len(SECTIONS)


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main
    for name, _ in SECTIONS:
        (tmp_path / f"{name}.txt").write_text(f"table {name}\n")
    assert main(["report", "--results-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "GVFS reproduction report" in out


def test_cli_report_flags_missing(tmp_path, capsys):
    assert main_with(tmp_path) == 1


def main_with(tmp_path):
    from repro.cli import main
    return main(["report", "--results-dir", str(tmp_path / "empty")])


def test_repo_results_dir_report_if_present():
    """If the repo's results/ exists (benchmarks ran), the report builds."""
    results = pathlib.Path(__file__).resolve().parents[2] / "results"
    if not results.exists():
        pytest.skip("benchmarks not run yet")
    report = assemble_report(results)
    assert report.present  # at least something archived
