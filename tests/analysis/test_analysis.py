"""Tests for statistics helpers and table renderers."""

import pytest

from repro.analysis.stats import geometric_mean, overhead, speedup
from repro.analysis.tables import (
    format_duration,
    format_figure3,
    format_figure4,
    format_figure6,
    format_table1,
)
from repro.core.session import Scenario
from repro.experiments.appbench import AppBenchResult
from repro.experiments.clonebench import CloneBenchResult
from repro.workloads.base import PhaseResult, WorkloadResult


def test_speedup_and_overhead():
    assert speedup(10, 2) == pytest.approx(5.0)
    assert overhead(10, 13) == pytest.approx(0.3)
    with pytest.raises(ValueError):
        speedup(10, 0)
    with pytest.raises(ValueError):
        overhead(0, 5)


def test_geometric_mean():
    assert geometric_mean([2, 8]) == pytest.approx(4.0)
    assert geometric_mean([5]) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1, -1])


def test_format_duration():
    assert format_duration(0) == "0:00"
    assert format_duration(61) == "1:01"
    assert format_duration(3600) == "1:00h"
    assert format_duration(5400) == "1:30h"


def fake_app_result(scenario, phase_times, runs=1):
    result = AppBenchResult(scenario=scenario, workload="w")
    for _ in range(runs):
        result.runs.append(WorkloadResult("w", [
            PhaseResult(name, t) for name, t in phase_times]))
    return result


def test_format_figure3_contains_phases_and_totals():
    results = {
        "Local": fake_app_result(Scenario.LOCAL,
                                 [("phase1", 60), ("phase2", 120)]),
        "WAN": fake_app_result(Scenario.WAN,
                               [("phase1", 600), ("phase2", 120)]),
    }
    table = format_figure3(results)
    assert "phase1" in table and "total" in table
    assert "1:00" in table and "10:00" in table
    assert "Local" in table and "WAN" in table


def test_format_figure4_metrics_and_notes():
    phases = [(f"iter{i:02d}", 10.0 if i else 100.0) for i in range(5)]
    results = {"WAN+C": fake_app_result(Scenario.WAN_CACHED, phases)}
    results["WAN+C"].flush_seconds = 42.0
    table = format_figure4(results, staging_download=1000,
                           staging_upload=2000)
    assert "first iteration" in table
    assert "100.00" in table
    assert "42.0" in table
    assert "2818" in table  # the paper reference appears in the note
    assert "1000 s" in table


def test_format_figure6_with_baselines():
    results = {
        "WAN-S1": CloneBenchResult("WAN-S1", clone_seconds=[86.0, 20.0]),
        "Local": CloneBenchResult("Local", clone_seconds=[36.0]),
    }
    table = format_figure6(results, scp_seconds=1209, purenfs_seconds=1648)
    assert "86.0" in table
    assert "-" in table         # missing clone #2 for Local
    assert "1127" in table      # paper reference
    assert "1209 s" in table


def test_format_table1_speedups():
    table = format_table1(691.2, 163.6, 204.5, 20.4)
    assert "3.38x" in table
    assert "8.02x" in table or "8.0" in table


def test_clone_result_total_prefers_wall_clock():
    seq = CloneBenchResult("s", clone_seconds=[10, 20])
    assert seq.total_seconds == 30
    par = CloneBenchResult("p", clone_seconds=[10, 20], wall_seconds=12)
    assert par.total_seconds == 12


def test_format_figure5_two_run_blocks():
    from repro.analysis.tables import format_figure5
    results = {
        "Local": fake_app_result(Scenario.LOCAL,
                                 [("make dep", 100), ("make bzImage", 700)],
                                 runs=2),
        "WAN+C": fake_app_result(Scenario.WAN_CACHED,
                                 [("make dep", 500), ("make bzImage", 900)],
                                 runs=2),
    }
    table = format_figure5(results)
    assert "first run (cold caches)" in table
    assert "second run (warm caches)" in table
    assert "make dep" in table
    assert table.count("total") == 2
