"""Tier-1 golden simulated-time check.

Runs the two cheapest perf workloads in quick mode and requires their
full simulated-time traces to be **bit-identical** to the recorded
signatures in ``benchmarks/golden_timings.json``.  Any change to the
engine, the proxy stack, or the cache layers that shifts a single
event lands here first; regenerate the signatures only via
``python -m repro.cli perf --update-golden`` when a change *intends*
to alter simulated results.
"""

from repro.experiments.perf import WORKLOADS, load_golden


def _check(name):
    golden = load_golden().get(f"{name}@quick")
    assert golden is not None, f"no golden signature for {name}@quick"
    sample = WORKLOADS[name](quick=True)
    assert sample.sim_signature == golden, (
        f"{name}@quick simulated-time signature drifted: "
        f"expected {golden}, got {sample.sim_signature}")


def test_cold_clone_quick_signature_is_golden():
    _check("cold_clone")


def test_flush_storm_quick_signature_is_golden():
    _check("flush_storm")
