"""Farm benchmark: storm driver, report gates, failure detection."""

import copy

import pytest

from repro.experiments import farmbench


@pytest.fixture(scope="module")
def tiny_report():
    """A tiny but complete farmbench report (8 sessions; one baseline
    cell and one crash cell), shared by the gate tests."""
    return farmbench.run_farmbench(sessions=8,
                                   cells=[(1, False), (4, True)])


def test_report_shape(tiny_report):
    assert tiny_report["bench"] == "pr9"
    assert set(tiny_report["cells"]) == {"s1", "s4-crash"}
    for cell in tiny_report["cells"].values():
        assert cell["completed_sessions"] == 8
        assert cell["clone_mean_seconds"] > 0
        assert cell["sim_seconds"] > 0


def test_crash_cell_survives_with_failovers(tiny_report):
    cell = tiny_report["cells"]["s4-crash"]
    assert cell["failover_events"] > 0
    assert cell["recovery_complete"]
    assert cell["audit"]["lost_blocks"] == 0
    assert cell["audit"]["acked_blocks"] == 8 * farmbench.CHECKPOINT_BLOCKS


def test_crash_spares_the_primary(tiny_report):
    cell = tiny_report["cells"]["s4-crash"]
    calls = cell["server_calls"]
    assert calls["data-server0"] > 0
    assert (rec["server"] == "data-server1"
            for rec in cell["recovery"])


def test_check_report_passes_clean_tiny_report(tiny_report):
    assert farmbench.check_report(tiny_report) == []


def test_check_report_flags_lost_acknowledged_writes(tiny_report):
    doctored = copy.deepcopy(tiny_report)
    audit = doctored["cells"]["s4-crash"]["audit"]
    audit["lost_blocks"] = 3
    audit["lost_examples"] = [[7, 0]]
    failures = farmbench.check_report(doctored)
    assert any("lost" in f for f in failures)


def test_check_report_flags_zero_failovers(tiny_report):
    doctored = copy.deepcopy(tiny_report)
    doctored["cells"]["s4-crash"]["failover_events"] = 0
    failures = farmbench.check_report(doctored)
    assert any("failover" in f for f in failures)


def test_check_report_flags_golden_drift(tiny_report):
    doctored = copy.deepcopy(tiny_report)
    doctored["golden_control"] = {"match": False,
                                  "golden_signature": "aaaa",
                                  "signature": "bbbb"}
    failures = farmbench.check_report(doctored)
    assert any("golden" in f for f in failures)


def test_check_report_flags_slow_speedup(tiny_report):
    doctored = copy.deepcopy(tiny_report)
    doctored["speedups"] = {"s4": 1.0}
    failures = farmbench.check_report(doctored)
    assert any("speedup" in f for f in failures)


def test_check_report_baseline_regression_bound(tiny_report):
    baseline = copy.deepcopy(tiny_report)
    slow = copy.deepcopy(tiny_report)
    slow["cells"]["s1"]["sim_seconds"] *= 2
    assert farmbench.check_report(tiny_report, baseline=baseline) == []
    failures = farmbench.check_report(slow, baseline=baseline)
    assert any("baseline" in f for f in failures)


def test_run_farmbench_rejects_bad_cells():
    with pytest.raises(ValueError):
        farmbench.run_farmbench(sessions=4, cells=[(0, False)])
    with pytest.raises(ValueError):
        farmbench.run_farmbench(sessions=4, cells=[(1, True)])


def test_placement_determinism_probe():
    det = farmbench.run_placement_determinism(seed=3)
    assert det["identical"]
    assert det["entries"] > 0


def test_format_report_mentions_cells(tiny_report):
    text = farmbench.format_report(tiny_report)
    assert "s1" in text and "s4-crash" in text
    assert "placement" in text.lower()
