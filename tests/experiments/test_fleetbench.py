"""Fleet-scale benchmark: storm modes, accuracy gates, report checks."""

import pytest

from repro.experiments import fleetbench


@pytest.fixture(scope="module")
def tiny_storms():
    """One tiny storm per mode (6 sessions, 2 sites), shared by tests."""
    return {mode: fleetbench.run_clone_storm(mode, sessions=6, sites=2,
                                             processes=2)
            for mode in fleetbench.MODES}


def test_engine_microbench_meets_acceptance_floor():
    micro = fleetbench.run_engine_microbench(quick=True, repeats=1)
    assert micro["speedup_vs_pr2"] >= fleetbench.MIN_MICROBENCH_SPEEDUP
    assert micro["events"] > 0


def test_storm_partitions_sessions_into_site_islands(tiny_storms):
    for mode, storm in tiny_storms.items():
        assert storm["sites"] == 2
        assert [r["sessions"] for r in storm["per_site"]] == [3, 3]
        assert storm["events"] == sum(r["events"] for r in storm["per_site"])


def test_sharded_storm_is_bit_identical_to_exact(tiny_storms):
    exact = tiny_storms["exact"]["per_site"]
    sharded = tiny_storms["sharded"]["per_site"]
    for a, b in zip(exact, sharded):
        assert b["sim_seconds"] == a["sim_seconds"]
        assert b["clone_seconds"] == a["clone_seconds"]
        assert b["events"] == a["events"]


def test_fluid_storm_matches_exact_with_fewer_events(tiny_storms):
    exact = tiny_storms["exact"]
    fluid = tiny_storms["fluid"]
    assert fluid["sim_seconds"] == pytest.approx(
        exact["sim_seconds"], rel=fleetbench.DRIFT_TOLERANCE)
    assert fluid["events"] < exact["events"]


def test_storm_sessions_see_real_clone_times(tiny_storms):
    for r in tiny_storms["exact"]["per_site"]:
        assert len(r["clone_seconds"]) == r["sessions"]
        assert all(t > 0 for t in r["clone_seconds"])


def test_storm_rejects_bad_arguments():
    with pytest.raises(ValueError):
        fleetbench.run_clone_storm("warp", sessions=4, sites=2)
    with pytest.raises(ValueError):
        fleetbench.run_clone_storm("exact", sessions=1, sites=2)


def test_fluid_accuracy_single_workload_within_tolerance():
    acc = fleetbench.run_fluid_accuracy(quick=True,
                                        workloads=["fig4_latex"])
    entry = acc["fig4_latex"]
    assert entry["within_tolerance"]
    assert entry["drift"] <= fleetbench.DRIFT_TOLERANCE


def test_fluid_accuracy_rejects_unknown_workload():
    with pytest.raises(ValueError):
        fleetbench.run_fluid_accuracy(workloads=["fig99"])


def test_check_report_passes_clean_report(tiny_storms):
    report = {
        "quick": True,
        "engine_microbench": {"events_per_sec": 1e6, "speedup_vs_pr2": 10.0},
        "storm": tiny_storms,
        "fluid_accuracy": {"fig4_latex": {"within_tolerance": True,
                                          "drift": 0.0}},
    }
    assert fleetbench.check_report(report) == []


def test_check_report_flags_slow_microbench():
    report = {"engine_microbench": {"events_per_sec": 1000.0,
                                    "speedup_vs_pr2": 0.5},
              "fluid_accuracy": {}, "storm": {}}
    failures = fleetbench.check_report(report)
    assert len(failures) == 1 and "microbench" in failures[0]


def test_check_report_flags_fluid_drift():
    report = {"engine_microbench": {"speedup_vs_pr2": 10.0},
              "fluid_accuracy": {"fig6_cloning": {
                  "within_tolerance": False, "drift": 0.2,
                  "exact_sim_seconds": 100.0, "fluid_sim_seconds": 120.0}},
              "storm": {}}
    failures = fleetbench.check_report(report)
    assert len(failures) == 1 and "drifted" in failures[0]


def test_check_report_flags_shard_divergence():
    site = {"site": 0, "sim_seconds": 10.0, "clone_seconds": [1.0]}
    bad = {"site": 0, "sim_seconds": 10.5, "clone_seconds": [1.0]}
    report = {"engine_microbench": {"speedup_vs_pr2": 10.0},
              "fluid_accuracy": {},
              "storm": {"exact": {"per_site": [site]},
                        "sharded": {"per_site": [bad]}}}
    failures = fleetbench.check_report(report)
    assert len(failures) == 1 and "diverged" in failures[0]


def test_check_report_flags_regression_vs_baseline():
    micro = {"events_per_sec": 500_000.0, "speedup_vs_pr2": 8.0}
    report = {"quick": True, "engine_microbench": micro,
              "fluid_accuracy": {}, "storm": {}}
    baseline = {"quick": True,
                "engine_microbench": {"events_per_sec": 1_000_000.0}}
    failures = fleetbench.check_report(report, baseline=baseline)
    assert len(failures) == 1 and "regressed" in failures[0]
    # A baseline at a different scale is ignored.
    baseline["quick"] = False
    assert fleetbench.check_report(report, baseline=baseline) == []


def test_format_report_renders_all_sections(tiny_storms):
    report = {
        "engine_microbench": {"events_per_sec": 1e6, "speedup_vs_pr2": 12.0},
        "storm": tiny_storms,
        "fluid_accuracy": {"fig4_latex": {
            "exact_sim_seconds": 48.6, "fluid_sim_seconds": 48.6,
            "drift": 0.0, "within_tolerance": True}},
    }
    text = fleetbench.format_report(report)
    assert "engine microbench" in text
    assert "sharded" in text
    assert "fig4_latex" in text


def test_storm_telemetry_rides_along():
    storm = fleetbench.run_clone_storm("exact", sessions=2, sites=1,
                                       telemetry=True)
    site = storm["per_site"][0]
    assert "layer_totals" in site
    assert "front" in site["layer_totals"]
    assert "fleet:" in site["fleet_report"]
