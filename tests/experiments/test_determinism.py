"""Whole-stack determinism: identical runs produce identical timings.

Every figure in EXPERIMENTS.md is reported as a single deterministic
number; these tests pin that property at the system level (the engine-
level property is covered in tests/core/test_cache_properties.py).
"""

import pytest

from repro.core.session import Scenario
from repro.experiments.appbench import run_application_benchmark
from repro.experiments.clonebench import CloneScenario, run_cloning_benchmark
from repro.workloads.latex import LatexBenchmark


def test_application_benchmark_is_deterministic():
    def once():
        r = run_application_benchmark(
            Scenario.WAN_CACHED, lambda: LatexBenchmark(iterations=2),
            runs=1)
        return [p.seconds for p in r.runs[0].phases] + [r.flush_seconds]

    assert once() == once()


def test_cloning_benchmark_is_deterministic():
    def once():
        return run_cloning_benchmark(CloneScenario.WAN_S1,
                                     n_clones=2).clone_seconds

    assert once() == once()


def test_image_content_is_deterministic_across_processes():
    """Image bytes derive only from seeds (no randomized hashing)."""
    from repro.vm.image import make_memory_state
    a = make_memory_state(1 << 20, zero_fraction=0.9, seed=3)
    b = make_memory_state(1 << 20, zero_fraction=0.9, seed=3)
    assert a.read(0, 1 << 20) == b.read(0, 1 << 20)
    # Stable, documented fingerprint: guards against accidental changes
    # to the generator that would silently shift every calibration.
    import hashlib
    digest = hashlib.sha256(a.read(0, 1 << 20)).hexdigest()[:16]
    assert len(digest) == 16


def test_perf_workloads_back_to_back_traces_are_byte_identical():
    """Two consecutive harness runs of the cloning workload must emit
    byte-identical simulated-time traces — the regression gate for the
    engine/cache fast paths, which may only change wall-clock time."""
    import json
    from repro.experiments import perf

    def trace(sample):
        return json.dumps({"sim": sample.sim_seconds,
                           "signature": sample.sim_signature,
                           "events": sample.events,
                           "blocks": sample.blocks},
                          sort_keys=True).encode()

    first = trace(perf.WORKLOADS["cold_clone"](True))
    second = trace(perf.WORKLOADS["cold_clone"](True))
    assert first == second


def test_block_cache_placement_is_process_independent():
    """Bank indexing uses crc32, not PYTHONHASHSEED-dependent hash()."""
    from repro.core.blockcache import ProxyBlockCache
    from repro.core.config import ProxyCacheConfig
    from repro.nfs.protocol import FileHandle
    from repro.sim import Environment
    from repro.storage.localfs import LocalFileSystem

    env = Environment()
    cache = ProxyBlockCache(env, LocalFileSystem(env),
                            ProxyCacheConfig(capacity_bytes=16 * 8192,
                                             n_banks=4, associativity=2))
    # These expectations are stable constants of the crc32 scheme; if
    # the indexing changes, warm/cold behaviour everywhere shifts.
    assert cache._index((FileHandle("images", 7), 0)) == \
        cache._index((FileHandle("images", 7), 0))
    banks = {cache._index((FileHandle("images", i), 0))[0]
             for i in range(32)}
    assert len(banks) > 1  # keys spread across banks
