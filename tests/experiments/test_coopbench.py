"""Coopbench driver smoke tests (single quick cells) plus the
faultbench/fluid composition added alongside cooperative caching."""

import pytest

from repro.experiments.coopbench import _run_coop_cell
from repro.experiments.faultbench import check_report, run_faultbench


def test_cooperative_cell_beats_siloed_peers():
    coop = _run_coop_cell("cooperative", depth=1, n_peers=2, quick=True)
    silo = _run_coop_cell("inclusive", depth=1, n_peers=2, quick=True)
    assert coop["integrity_ok"] and silo["integrity_ok"]
    assert coop["peer_hits"] > 0
    assert coop["directory"]["hits"] == coop["peer_hits"]
    # The point of the peer directory: the cold storm crosses the WAN
    # once per block, not once per peer.
    coop_cold, silo_cold = coop["phases"][0], silo["phases"][0]
    assert coop_cold["phase"] == silo_cold["phase"] == "cold_storm"
    assert coop_cold["wan_bytes"] < silo_cold["wan_bytes"]
    assert coop_cold["makespan_s"] < silo_cold["makespan_s"]


def test_exclusive_cell_demotes_and_stays_correct():
    cell = _run_coop_cell("exclusive", depth=2, n_peers=1, quick=True)
    assert cell["integrity_ok"]
    assert cell["demotions_out"] > 0
    assert cell["demotions_in"] <= cell["demotions_out"]
    assert cell["peer_hits"] == 0            # no directory in this mode


def test_faultbench_composes_with_fluid_links():
    report = run_faultbench(scenarios=["wan_blip"], quick=True,
                            link_mode="fluid")
    assert report["link_mode"] == "fluid"
    blip = report["scenarios"]["wan_blip"]
    assert blip["integrity_ok"]
    assert blip["outages"] >= 1              # the fault actually fired
    assert blip["replay_identical"]
    assert check_report(report) == []


def test_faultbench_rejects_unknown_link_mode():
    with pytest.raises(ValueError):
        run_faultbench(scenarios=["wan_blip"], quick=True,
                       link_mode="plasma")
