"""Tests for the persistent-VM lifecycle driver (§3.2.3 scenario 1)."""

import pytest

from repro.experiments.persistent import (
    PERSISTENT_VM_CONFIG,
    run_persistent_vm_lifecycle,
)


@pytest.fixture(scope="module")
def lifecycle():
    return run_persistent_vm_lifecycle()


def test_lifecycle_completes_all_phases(lifecycle):
    assert lifecycle.first_resume_seconds > 0
    assert lifecycle.work_seconds > 10.0       # includes the compute burst
    assert lifecycle.suspend_seconds > 0
    assert lifecycle.offline_flush_seconds > 0
    assert lifecycle.second_resume_seconds > 0
    assert lifecycle.second_node_index == 1    # the user moved servers


def test_on_demand_access_moves_a_fraction_of_the_disk(lifecycle):
    """§3.2.3 claim 2: the virtual disk is never downloaded wholesale."""
    assert lifecycle.disk_moved_fraction < 0.10


def test_suspend_faster_than_offline_flush(lifecycle):
    """§3.2.3 claim 4: write-back makes the user-visible suspend cheap;
    the bulk upload happens off-line."""
    assert lifecycle.suspend_seconds < lifecycle.offline_flush_seconds


def test_second_session_reads_are_cheap(lifecycle):
    """After the user returns, re-reading the project files costs far
    less than the first session's combined read+write pass."""
    assert lifecycle.second_work_seconds < lifecycle.work_seconds


def test_checkpoint_roundtrip_preserves_state():
    """The state written in session A is what session B resumes from."""
    from repro.core.session import GvfsSession, Scenario, ServerEndpoint
    from repro.net.topology import make_paper_testbed
    from repro.vm.image import VmImage
    from repro.vm.monitor import VmMonitor

    testbed = make_paper_testbed(n_compute=2)
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/d",
                           PERSISTENT_VM_CONFIG)
    image.generate_metadata()
    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i)
                for i in range(2)]
    monitors = [VmMonitor(env, testbed.compute[i]) for i in range(2)]
    box = {}

    def proc(env):
        vm = yield from monitors[0].resume(sessions[0].mount, "/images/d")
        yield from monitors[0].suspend(sessions[0].mount, "/images/d", vm)
        yield env.process(sessions[0].flush())
        image.generate_metadata()
        # Session B verifies every byte of the new checkpoint.
        golden = image.memory_inode.data
        vm2 = yield from monitors[1].resume(sessions[1].mount, "/images/d",
                                            verify_against=golden)
        box["ok"] = vm2.running

    env.process(proc(env))
    env.run()
    assert box["ok"]
