"""Chaosbench: the seeded (layer × fault × workload) sweep holds its
three guarantees in quick mode, the negative control shows the verify
layer is load-bearing, and single cells behave as advertised."""

from repro.experiments.chaosbench import (
    check_report,
    format_report,
    run_chaosbench,
    run_golden_check,
    run_negative_control,
    _cells,
    _run_cell,
)


def test_quick_sweep_holds_every_guarantee():
    report = run_chaosbench(quick=True)
    assert check_report(report) == []
    assert report["n_cells"] >= 24
    for cell in report["cells"].values():
        assert cell["corrupted_bytes_served"] == 0
        assert cell["lost_writes"] == 0
        assert cell["engaged_markers"]       # the fault struck its target
        assert not cell["offtarget_markers"]  # ...and only its target
        assert cell["replay_identical"]
    # Negative control: with the verify layer absent, the same injected
    # corruption reaches the reader — the layer is load-bearing.
    assert report["negative_control"]["corrupted_bytes_served"] > 0
    # Golden control: the layer's clean path is timing-invisible.
    assert report["golden"]["identical"]
    text = format_report(report)
    assert "chaosbench" in text and "negative control" in text


def test_cell_matrix_is_seeded_and_deterministic():
    a = _cells(quick=True, seed=17)
    b = _cells(quick=True, seed=17)
    assert a == b
    assert len(a) >= 24
    assert len({c["name"] for c in a}) == len(a)      # names are unique
    workloads = {c["workload"] for c in a}
    assert workloads == {"cold_read", "warm_peer", "warm_l2", "upload"}


def test_single_corruption_cell_catches_and_repairs():
    cell = next(c for c in _cells(quick=True, seed=17)
                if c["kind"].value == "corrupt-frame")
    result = _run_cell(cell, cell["workload"], quick=True, seed=17)
    assert result["corrupted_bytes_served"] == 0
    assert result["corruptions_caught"] >= 1
    assert result["corruptions_repaired"] == result["corruptions_caught"]


def test_negative_control_and_golden_check_run_standalone():
    control = run_negative_control(quick=True, seed=17)
    assert control["checksum_layer"] == "absent"
    assert control["corrupted_bytes_served"] > 0
    golden = run_golden_check(quick=True, seed=17)
    assert golden["identical"]
