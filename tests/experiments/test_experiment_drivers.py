"""Smoke/shape tests for the experiment drivers (small configurations)."""

import pytest

from repro.core.session import Scenario
from repro.experiments.appbench import run_application_benchmark
from repro.experiments.clonebench import (
    CloneScenario,
    run_cloning_benchmark,
    run_parallel_cloning,
)
from repro.workloads.latex import LatexBenchmark


def test_appbench_returns_per_run_phases():
    result = run_application_benchmark(
        Scenario.LOCAL, lambda: LatexBenchmark(iterations=2), runs=2)
    assert result.scenario is Scenario.LOCAL
    assert len(result.runs) == 2
    assert len(result.runs[0].phases) == 2
    assert result.run_total(0) > 0
    assert result.phase("iter01", run=1) > 0


def test_appbench_second_run_warm_not_slower():
    result = run_application_benchmark(
        Scenario.WAN_CACHED, lambda: LatexBenchmark(iterations=2), runs=2)
    assert result.run_total(1) <= result.run_total(0)


def test_appbench_wan_slower_than_local():
    local = run_application_benchmark(
        Scenario.LOCAL, lambda: LatexBenchmark(iterations=2), runs=1)
    wan = run_application_benchmark(
        Scenario.WAN, lambda: LatexBenchmark(iterations=2), runs=1)
    assert wan.run_total() > local.run_total() * 2


def test_clonebench_sequential_records_each_clone():
    result = run_cloning_benchmark(CloneScenario.WAN_S1, n_clones=2)
    assert result.scenario == "WAN-S1"
    assert len(result.clone_seconds) == 2
    assert result.clone_seconds[1] < result.clone_seconds[0]
    assert result.details[0].phases["copy_memory"] > 0


def test_clonebench_cold_between_eliminates_locality():
    warmish = run_cloning_benchmark(CloneScenario.WAN_S1, n_clones=2)
    cold = run_cloning_benchmark(CloneScenario.WAN_S1, n_clones=2,
                                 cold_between=True)
    # With cold caches between clonings, the second clone is as
    # expensive as the first.
    assert cold.clone_seconds[1] > warmish.clone_seconds[1] * 2
    assert cold.clone_seconds[1] == pytest.approx(cold.clone_seconds[0],
                                                  rel=0.15)


def test_parallel_cloning_overlaps():
    par = run_parallel_cloning(n_clones=2)
    assert par.scenario == "WAN-P"
    assert len(par.clone_seconds) == 2
    # Wall clock is far below the sum of per-clone times.
    assert par.wall_seconds < sum(par.clone_seconds) * 0.9
