"""Import hygiene for the layered proxy stack.

The layer modules are the foundation the proxy and session builders
stand on; an import from ``repro.core.layers`` back up into
``repro.core.session`` or ``repro.core.proxy`` would be a cycle waiting
to happen.  These checks parse the source (no imports executed) and
fail on (a) any such upward reference — even lazy, function-level ones
— and (b) any top-level import cycle anywhere in ``repro``.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"


def _module_name(path):
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _repro_modules():
    return {_module_name(p): p for p in (SRC / "repro").rglob("*.py")}


def _imports(tree, module, top_level_only):
    """repro.* module names referenced by import statements in ``tree``."""
    found = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.level:       # relative import: resolve against module
                base = module.split(".")[:-node.level]
                prefix = ".".join(base + ([node.module] if node.module
                                          else []))
            else:
                prefix = node.module or ""
            names = [prefix] + [f"{prefix}.{alias.name}"
                                for alias in node.names]
        else:
            continue
        if top_level_only and node.col_offset != 0:
            continue
        found.update(n for n in names if n == "repro" or
                     n.startswith("repro."))
    return found


def test_layers_never_import_session_or_proxy():
    """No reference from any layers module to the modules above it —
    not even inside a function body.  ``repro.experiments`` sits two
    floors up (it assembles sessions); a layer reaching into it would
    invert the whole architecture."""
    banned = ("repro.core.session", "repro.core.proxy",
              "repro.experiments")
    offenders = []
    for module, path in sorted(_repro_modules().items()):
        if not module.startswith("repro.core.layers"):
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for imported in _imports(tree, module, top_level_only=False):
            if any(imported == b or imported.startswith(b + ".")
                   for b in banned):
                offenders.append(f"{module} imports {imported}")
    assert not offenders, "\n".join(offenders)


def test_no_top_level_import_cycles_in_repro():
    """The whole package's top-level import graph is acyclic."""
    modules = _repro_modules()
    graph = {}
    for module, path in modules.items():
        tree = ast.parse(path.read_text(), filename=str(path))
        deps = set()
        for imported in _imports(tree, module, top_level_only=True):
            # `from repro.core.layers import X` may name either a
            # module or a symbol; normalise to the longest prefix that
            # is a real module.
            name = imported
            while name and name not in modules:
                name = name.rpartition(".")[0]
            if name and name != module:
                deps.add(name)
        graph[module] = deps

    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)
    stack_trace = []
    cycles = []

    def visit(node):
        color[node] = GREY
        stack_trace.append(node)
        for dep in sorted(graph.get(node, ())):
            if color.get(dep, BLACK) == GREY:
                cycles.append(" -> ".join(
                    stack_trace[stack_trace.index(dep):] + [dep]))
            elif color.get(dep) == WHITE:
                visit(dep)
        stack_trace.pop()
        color[node] = BLACK

    for module in sorted(graph):
        if color[module] == WHITE:
            visit(module)
    assert not cycles, "import cycles:\n" + "\n".join(cycles)
