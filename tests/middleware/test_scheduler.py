"""Tests for the high-throughput task scheduler."""

import pytest

from repro.middleware.imageserver import ImageRequirements
from repro.middleware.scheduler import Task, TaskScheduler
from repro.middleware.sessions import VmSessionManager
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.vm.image import GuestFile, VmConfig
from repro.workloads.base import ComputeStep, Phase, ReadStep, Workload


def small_workload(compute=5.0):
    return lambda: Workload("task", [Phase("work", [
        ReadStep(GuestFile("in/data", 64 * 1024)),
        ComputeStep(compute),
    ])])


def make_scheduler(n_compute=2, slots_per_node=1):
    testbed = Testbed(Environment(), n_compute=n_compute)
    middleware = VmSessionManager(testbed)
    middleware.catalog.register(
        "base", VmConfig(name="base", memory_mb=2, disk_gb=0.01, seed=1))
    return testbed, TaskScheduler(middleware, slots_per_node=slots_per_node)


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


def make_tasks(n, compute=5.0):
    return [Task(name=f"t{i}", user=f"user{i}",
                 workload_factory=small_workload(compute),
                 requirements=ImageRequirements()) for i in range(n)]


def test_batch_runs_every_task():
    testbed, scheduler = make_scheduler()
    results = run(testbed.env, scheduler.run_batch(make_tasks(4)))
    assert len(results) == 4
    assert all(r.workload is not None for r in results)
    assert all(r.execution_seconds > 5.0 for r in results)
    # All sessions were torn down (leases released, state flushed).
    assert scheduler.middleware.active_sessions == 0


def test_tasks_spread_across_nodes():
    testbed, scheduler = make_scheduler(n_compute=2)
    results = run(testbed.env, scheduler.run_batch(make_tasks(4)))
    nodes = {r.compute_index for r in results}
    assert nodes == {0, 1}


def test_slots_bound_concurrency():
    testbed, scheduler = make_scheduler(n_compute=1, slots_per_node=1)
    results = run(testbed.env, scheduler.run_batch(make_tasks(3)))
    # With one slot, later tasks queue: distinct, growing queue delays.
    queued = sorted(r.queued_seconds for r in results)
    assert queued[0] == pytest.approx(0.0)
    assert queued[1] > 0
    assert queued[2] > queued[1]


def test_parallel_nodes_cut_makespan():
    def makespan(n_compute):
        testbed, scheduler = make_scheduler(n_compute=n_compute)
        run(testbed.env, scheduler.run_batch(make_tasks(4, compute=20.0)))
        return scheduler.makespan_seconds

    assert makespan(4) < makespan(1) * 0.6


def test_write_back_state_flushed_per_task():
    testbed, scheduler = make_scheduler(n_compute=1)

    def writing_workload():
        from repro.workloads.base import WriteStep
        return Workload("writer", [Phase("w", [
            WriteStep(GuestFile("out/result", 64 * 1024)),
        ])])

    tasks = [Task(name="w0", user="alice",
                  workload_factory=writing_workload)]
    run(testbed.env, scheduler.run_batch(tasks))
    # The consistency log shows the flush signal fired at teardown.
    assert scheduler.middleware.consistency.log
    result = scheduler.results[0]
    assert result.teardown_seconds >= 0
    assert result.turnaround_seconds > 0


def test_invalid_slots():
    testbed, _ = make_scheduler()
    middleware = VmSessionManager(testbed)
    with pytest.raises(ValueError):
        TaskScheduler(middleware, slots_per_node=0)
