"""Tests for the sharded, replicated image-server farm."""

import pytest

from repro.core.layers.checksum import ChecksumRegistry
from repro.middleware.farm import ImageFarm
from repro.net.topology import make_paper_testbed
from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.storage.vfs import FileSystem
from repro.vm.image import VmConfig

BLOCK = 8192


def make_farm(n_servers=4, seed=0, register=True):
    testbed = make_paper_testbed(n_compute=2)
    farm = ImageFarm(testbed, n_servers=n_servers, seed=seed)
    if register:
        farm.register_image(
            "golden",
            VmConfig(name="golden", memory_mb=4, disk_gb=0.01,
                     persistent=False, seed=17),
            zero_fraction=0.5, generate_metadata=False)
    return testbed, farm


def run_small_storm(n_servers=4, sessions=8, crash_at=None,
                    crash_index=1, seed=0):
    """A small clone storm (with per-session checkpoint writes) against
    a fresh farm; returns (farm, manager, env)."""
    from repro.middleware.imageserver import ImageRequirements
    from repro.middleware.sessions import VmSessionManager
    from repro.sim import AllOf
    from repro.sim.chaos import attach_data_servers
    from repro.sim.faults import FaultInjector, FaultPlan

    testbed = make_paper_testbed(n_compute=4)
    env = testbed.env
    farm = ImageFarm(testbed, n_servers=n_servers, seed=seed)
    manager = VmSessionManager(testbed, origin=farm,
                               account_pool_size=sessions)
    farm.register_image(
        "golden",
        VmConfig(name="golden", memory_mb=4, disk_gb=0.01,
                 persistent=False, seed=17),
        zero_fraction=0.5, generate_metadata=False)
    farm.provision_dir("/checkpoints")
    requirements = ImageRequirements(min_memory_mb=4)

    def one_user(env, index):
        yield env.timeout(index * 0.05)
        session = yield env.process(manager.create_session(
            f"u{index}", requirements))
        ckpt = yield from session.gvfs.mount.create(
            f"/checkpoints/u{index}.ckpt")
        payload = bytes([index % 251]) * BLOCK
        for b in range(2):
            yield from ckpt.write(b * BLOCK, payload)
        yield from ckpt.close()
        yield env.process(manager.end_session(session))

    def driver(env):
        yield AllOf(env, [env.process(one_user(env, i))
                          for i in range(sessions)])

    if crash_at is not None:
        injector = FaultInjector(env)
        names = attach_data_servers(injector, "farm", farm)
        injector.schedule(FaultPlan.server_crash(names[crash_index],
                                                 at=crash_at))
    env.process(driver(env))
    env.run()
    return farm, manager, env


# -- placement ----------------------------------------------------------------

def test_same_seed_same_placement_map():
    _, a = make_farm(seed=11)
    _, b = make_farm(seed=11)
    snap_a = a.metadata.placement_snapshot()
    assert snap_a
    assert snap_a == b.metadata.placement_snapshot()


def test_different_seed_different_placement_map():
    _, a = make_farm(seed=11)
    _, b = make_farm(seed=12)
    assert (a.metadata.placement_snapshot()
            != b.metadata.placement_snapshot())


def test_placement_respects_replication_factor():
    _, farm = make_farm(n_servers=4)
    for owners in farm.metadata.placement_snapshot().values():
        assert len(owners) == 2
        assert len(set(owners)) == 2


def test_retirement_keeps_surviving_owners():
    """Rendezvous property: retiring one server never moves a range
    between its surviving owners."""
    _, farm = make_farm(n_servers=4)
    before = farm.metadata.placement_snapshot()
    victim = farm.data_servers[2]
    farm.metadata.retire_server(victim)
    after = farm.metadata.placement_snapshot()
    for key, owners in before.items():
        survivors = [n for n in owners if n != victim.name]
        assert after[key] == survivors


def test_image_fileids_aligned_across_servers():
    _, farm = make_farm(n_servers=3)
    reference = farm.data_servers[0].fs
    for path, inode in reference.walk_files("/images/golden"):
        for node in farm.data_servers[1:]:
            assert node.fs.lookup(path).fileid == inode.fileid


# -- checksum sidecar persistence ---------------------------------------------

def test_checksum_registry_save_load_roundtrip():
    env = Environment()
    fs = FileSystem(env)
    registry = ChecksumRegistry()
    fh = FileHandle("images", 42)
    registry.record((fh, 0), b"a" * BLOCK)
    registry.record((fh, 1), b"b" * 100)
    registry.record(("opaque", 3), b"never persisted")
    saved = registry.save(fs, "/digests.json", fileids={42})
    assert saved == 2

    restored = ChecksumRegistry()
    assert restored.load(fs, "/digests.json") == 2
    assert restored.matches((fh, 0), b"a" * BLOCK) is True
    assert restored.matches((fh, 0), b"x" * BLOCK) is False
    assert restored.matches((fh, 1), b"b" * 100) is True
    assert restored.matches(("opaque", 3), b"never persisted") is None


def test_farm_persists_digest_sidecar_on_every_replica():
    _, farm = make_farm(n_servers=3)
    sidecar = f"/images/golden/{ChecksumRegistry.PERSIST_NAME}"
    sizes = set()
    for node in farm.data_servers:
        assert node.fs.exists(sidecar)
        sizes.add(node.fs.lookup(sidecar).data.size)
    assert len(sizes) == 1 and sizes.pop() > 0
    # A fresh registry rebuilt from the sidecar verifies image blocks.
    restored = ChecksumRegistry()
    assert restored.load(farm.data_servers[1].fs, sidecar) > 0
    fs = farm.data_servers[0].fs
    inode = fs.lookup("/images/golden/mem.vmss")
    fh = FileHandle("images", inode.fileid)
    assert restored.matches((fh, 0), inode.data.read(0, BLOCK)) is True


# -- storms -------------------------------------------------------------------

def test_storm_without_crash_spreads_load():
    farm, manager, env = run_small_storm(n_servers=4, sessions=8)
    calls = {node.name: node.endpoint.server.calls
             for node in farm.data_servers}
    assert all(count > 0 for count in calls.values()), calls
    audit = farm.audit_acknowledged_writes()
    assert audit["acked_blocks"] == 8 * 2
    assert audit["lost_blocks"] == 0
    assert farm.client_totals()["failed_writes"] == 0


def test_crash_mid_storm_bounded_recovery_no_lost_writes():
    farm, manager, env = run_small_storm(n_servers=4, sessions=8,
                                         crash_at=0.7)
    victim = farm.data_servers[1]
    assert not victim.alive and victim.retired
    # The storm completed despite the crash.
    assert all(s.closed for s in manager.sessions)
    totals = farm.client_totals()
    assert (totals["failovers"] + totals["aborted_attempts"]
            + totals["channel_failovers"] + totals["aborted_fetches"]) > 0
    # Bounded recovery: re-replication finished within the storm, with
    # every lost range rebuilt and verified against the sidecar digests.
    assert farm.recovery_complete()
    (record,) = farm.recovery_log
    assert record["ranges_rebuilt"] == record["ranges_lost"] > 0
    assert record["ranges_unrecoverable"] == 0
    assert record["verify_failures"] == 0
    assert record["blocks_verified"] > 0
    assert record["finished"] <= env.now
    # Zero lost acknowledged writes, zero stale bytes accepted.
    audit = farm.audit_acknowledged_writes()
    assert audit["acked_blocks"] == 8 * 2
    assert audit["lost_blocks"] == 0
    # No corrupted bytes reached a reader (client verify layers).
    totals_by_layer = manager.fleet_snapshot(deep=False)["layer_totals"]
    checksum = totals_by_layer.get("checksum", {})
    assert (checksum.get("corruptions_caught", 0)
            == checksum.get("corruptions_repaired", 0))


def test_crash_determinism_same_seed_same_timeline():
    results = []
    for _ in range(2):
        farm, manager, env = run_small_storm(n_servers=4, sessions=6,
                                             crash_at=0.6)
        results.append((env.now,
                        farm.metadata.placement_snapshot(),
                        farm.client_totals(),
                        [r["finished"] for r in farm.recovery_log]))
    assert results[0] == results[1]


def test_restarted_server_stays_retired():
    farm, manager, env = run_small_storm(n_servers=4, sessions=4,
                                         crash_at=0.6)
    victim = farm.data_servers[1]
    victim.restart()
    assert not victim.endpoint.server.crashed
    assert victim.retired and not victim.alive
    for owners in farm.metadata.placement_snapshot().values():
        assert victim.name not in owners


def test_no_live_servers_raises():
    from repro.nfs.rpc import RpcTimeout

    _, farm = make_farm(n_servers=2, register=False)
    for node in farm.data_servers:
        node.crash()
    with pytest.raises(RpcTimeout):
        farm.metadata.primary()


def test_single_server_farm_serves_alone():
    farm, manager, env = run_small_storm(n_servers=1, sessions=3)
    assert farm.metadata.replication == 1
    assert all(s.closed for s in manager.sessions)
    assert farm.audit_acknowledged_writes()["lost_blocks"] == 0
