"""Session-manager fleet telemetry: per-session layer snapshots and
fleet-wide totals surfaced through VmSessionManager."""

import pytest

from repro.core.session import ServerEndpoint
from repro.middleware.imageserver import ImageRequirements
from repro.middleware.sessions import VmSessionManager
from repro.net.topology import make_paper_testbed
from repro.vm.image import VmConfig


@pytest.fixture
def fleet():
    testbed = make_paper_testbed(n_compute=2)
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    manager = VmSessionManager(testbed, endpoint=endpoint)
    manager.catalog.register(
        "tiny", VmConfig(name="tiny", memory_mb=4, disk_gb=0.01,
                         persistent=False, seed=5),
        zero_fraction=0.5, generate_metadata=False)
    sessions = []

    def driver(env):
        for user in ("alice", "bob"):
            s = yield env.process(manager.create_session(
                user, ImageRequirements()))
            sessions.append(s)
        yield env.process(manager.end_session(sessions[0]))

    env.process(driver(env))
    env.run()
    return manager, sessions


def test_session_telemetry_one_entry_per_session(fleet):
    manager, sessions = fleet
    entries = manager.session_telemetry()
    assert len(entries) == 2
    assert [e["user"] for e in entries] == ["alice", "bob"]
    assert entries[0]["closed"] is True
    assert entries[1]["closed"] is False
    for entry in entries:
        layers = entry["layers"]
        assert "front" in layers
        # deep=True descends into the shared upstream forwarding proxy.
        assert "upstream" in layers
        assert layers["front"].get("requests", 0) > 0


def test_session_telemetry_shallow_omits_upstream(fleet):
    manager, _ = fleet
    entries = manager.session_telemetry(deep=False)
    assert all("upstream" not in e["layers"] for e in entries)


def test_fleet_snapshot_totals_sum_sessions(fleet):
    manager, _ = fleet
    snap = manager.fleet_snapshot()
    assert snap["sessions"] == 2
    assert snap["active_sessions"] == 1
    assert len(snap["per_session"]) == 2
    totals = snap["layer_totals"]
    assert "upstream" not in totals      # shared levels not double-counted
    per_session_front = [e["layers"]["front"].get("requests", 0)
                         for e in snap["per_session"]]
    assert totals["front"]["requests"] == sum(per_session_front) > 0


def test_format_fleet_report_mentions_layers(fleet):
    manager, _ = fleet
    text = manager.format_fleet_report()
    assert "fleet: 2 session(s), 1 active" in text
    assert "front" in text
    assert "block-cache" in text


def test_account_pool_size_bounds_concurrency():
    testbed = make_paper_testbed()
    env = testbed.env
    manager = VmSessionManager(
        testbed, endpoint=ServerEndpoint(env, testbed.wan_server),
        account_pool_size=1)
    manager.catalog.register(
        "tiny", VmConfig(name="tiny", memory_mb=4, disk_gb=0.01,
                         persistent=False, seed=5),
        zero_fraction=0.5, generate_metadata=False)
    failures = []

    def driver(env):
        yield env.process(manager.create_session("u0", ImageRequirements()))
        try:
            yield env.process(manager.create_session(
                "u1", ImageRequirements()))
        except RuntimeError as exc:
            failures.append(str(exc))

    env.process(driver(env))
    env.run()
    assert failures == ["logical account pool exhausted"]
