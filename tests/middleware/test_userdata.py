"""Tests for user-data mounts inside VMs (Figure 1's data servers)."""

import pytest

from repro.core.session import ServerEndpoint
from repro.middleware.imageserver import ImageRequirements
from repro.middleware.sessions import VmSessionManager
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.vm.image import VmConfig


def make_manager(with_data=True):
    testbed = Testbed(Environment(), n_compute=1)
    data_endpoint = (ServerEndpoint(testbed.env, testbed.lan_server,
                                    fsid="userdata") if with_data else None)
    mgr = VmSessionManager(testbed, data_endpoint=data_endpoint)
    mgr.catalog.register("base", VmConfig(name="base", memory_mb=2,
                                          disk_gb=0.01, seed=1))
    return testbed, mgr


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


def test_session_mounts_user_home():
    testbed, mgr = make_manager()
    session = run(testbed.env, mgr.create_session("alice",
                                                  ImageRequirements()))
    assert session.data_session is not None
    assert session.vm.user_mount is session.data_session.mount
    assert session.vm.user_dir == "/home/alice"
    assert mgr.data_endpoint.export.fs.exists("/home/alice")


def test_guest_reads_preexisting_user_file():
    testbed, mgr = make_manager()
    fs = mgr.data_endpoint.export.fs
    fs.mkdir("/home/alice", parents=True)
    fs.create("/home/alice/input.dat")
    fs.write("/home/alice/input.dat", b"grid user data" * 100)
    session = run(testbed.env, mgr.create_session("alice",
                                                  ImageRequirements()))

    def proc(env):
        data = yield env.process(session.vm.read_user_file("input.dat"))
        return data

    data = run(testbed.env, proc(testbed.env))
    assert data == b"grid user data" * 100
    assert session.vm.user_bytes_read == len(data)


def test_guest_writes_reach_data_server_after_session_end():
    testbed, mgr = make_manager()
    session = run(testbed.env, mgr.create_session("bob",
                                                  ImageRequirements()))
    payload = b"results!" * 2048

    def proc(env):
        yield env.process(session.vm.write_user_file("out.dat", payload))
        yield env.process(mgr.end_session(session))

    run(testbed.env, proc(testbed.env))
    assert mgr.data_endpoint.export.fs.read("/home/bob/out.dat") == payload


def test_user_data_isolated_per_user():
    testbed, mgr = make_manager()
    s1 = run(testbed.env, mgr.create_session("alice", ImageRequirements()))
    # Same node: the round-robin wraps to compute0 again.
    s2 = run(testbed.env, mgr.create_session("bob", ImageRequirements()))
    assert s1.vm.user_dir != s2.vm.user_dir

    def proc(env):
        yield env.process(s1.vm.write_user_file("mine.txt", b"alice-only"))

    run(testbed.env, proc(testbed.env))
    fs = mgr.data_endpoint.export.fs
    assert fs.exists("/home/alice/mine.txt")
    assert not fs.exists("/home/bob/mine.txt")


def test_vm_without_data_server_refuses_user_io():
    testbed, mgr = make_manager(with_data=False)
    session = run(testbed.env, mgr.create_session("alice",
                                                  ImageRequirements()))
    assert session.data_session is None
    box = {}

    def proc(env):
        try:
            yield env.process(session.vm.read_user_file("x"))
        except RuntimeError as exc:
            box["err"] = str(exc)

    run(testbed.env, proc(testbed.env))
    assert "no user data" in box["err"]
    with pytest.raises(RuntimeError):
        mgr.provision_user_home("alice")


def test_user_writes_absorbed_by_write_back_proxy():
    """User-file writes land in the data session's write-back cache and
    only reach the data server at the consistency point."""
    testbed, mgr = make_manager()
    session = run(testbed.env, mgr.create_session("carol",
                                                  ImageRequirements()))
    payload = b"draft" * 4096

    def proc(env):
        yield env.process(session.vm.write_user_file("draft.txt", payload))
        fs = mgr.data_endpoint.export.fs
        before = fs.exists("/home/carol/draft.txt") and \
            fs.read("/home/carol/draft.txt") == payload
        yield env.process(mgr.end_session(session))
        after = fs.read("/home/carol/draft.txt") == payload
        return before, after

    before, after = run(testbed.env, proc(testbed.env))
    assert not before   # absorbed locally, not yet at the server
    assert after        # durable after the middleware flush
