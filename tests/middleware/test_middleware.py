"""Tests for logical accounts, image catalog and session orchestration."""

import pytest

from repro.middleware.accounts import AccountManager
from repro.middleware.imageserver import ImageCatalog, ImageRequirements
from repro.middleware.sessions import VmSessionManager
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.storage.vfs import FileSystem
from repro.vm.image import VmConfig


# -- AccountManager -----------------------------------------------------------

def test_lease_assigns_distinct_identities():
    env = Environment()
    mgr = AccountManager(env, base_uid=5000, pool_size=4)
    a = mgr.lease("alice")
    b = mgr.lease("bob")
    assert a.uid != b.uid
    assert mgr.active_leases() == 2


def test_lease_idempotent_per_user():
    env = Environment()
    mgr = AccountManager(env, pool_size=4)
    assert mgr.lease("alice") is mgr.lease("alice")
    assert mgr.active_leases() == 1


def test_release_returns_account_to_pool():
    env = Environment()
    mgr = AccountManager(env, pool_size=1)
    mgr.lease("alice")
    with pytest.raises(RuntimeError):
        mgr.lease("bob")
    mgr.release("alice")
    mgr.lease("bob")
    assert mgr.account_of("alice") is None
    assert mgr.account_of("bob") is not None


def test_lease_expiry_frees_accounts():
    env = Environment()
    mgr = AccountManager(env, pool_size=1, lease_seconds=10.0)
    mgr.lease("alice")

    def advance(env):
        yield env.timeout(11.0)

    env.process(advance(env))
    env.run()
    assert mgr.active_leases() == 0
    mgr.lease("bob")  # pool is free again


def test_pool_size_validation():
    with pytest.raises(ValueError):
        AccountManager(Environment(), pool_size=0)


# -- ImageCatalog ---------------------------------------------------------------

def small_cfg(name, mem=2, disk=0.002, os_name="Red Hat Linux 7.3"):
    return VmConfig(name=name, memory_mb=mem, disk_gb=disk, os_name=os_name,
                    seed=1)


def test_register_and_lookup():
    cat = ImageCatalog(FileSystem())
    cat.register("base", small_cfg("base"), applications=("latex",))
    assert cat.names() == ["base"]
    assert cat.get("base").config.name == "base"


def test_register_duplicate_rejected():
    cat = ImageCatalog(FileSystem())
    cat.register("base", small_cfg("base"))
    with pytest.raises(ValueError):
        cat.register("base", small_cfg("base"))


def test_best_match_filters_requirements():
    cat = ImageCatalog(FileSystem())
    cat.register("small", small_cfg("small", mem=2),
                 applications=("latex",))
    cat.register("big", small_cfg("big", mem=8),
                 applications=("latex", "specseis"))
    match = cat.best_match(ImageRequirements(min_memory_mb=4))
    assert match.config.name == "big"
    match = cat.best_match(ImageRequirements(applications=("specseis",)))
    assert match.config.name == "big"


def test_best_match_prefers_leanest_satisfying():
    cat = ImageCatalog(FileSystem())
    cat.register("small", small_cfg("small", mem=2))
    cat.register("big", small_cfg("big", mem=8))
    match = cat.best_match(ImageRequirements(min_memory_mb=1))
    assert match.config.name == "small"


def test_best_match_no_candidate_raises():
    cat = ImageCatalog(FileSystem())
    cat.register("linux", small_cfg("linux"))
    with pytest.raises(LookupError):
        cat.best_match(ImageRequirements(os_name="Windows 2000"))


def test_registered_image_has_metadata():
    fs = FileSystem()
    cat = ImageCatalog(fs)
    cat.register("base", small_cfg("base"))
    assert fs.exists("/images/base/.mem.vmss.gvfs")


# -- VmSessionManager -------------------------------------------------------------

def make_manager():
    testbed = Testbed(Environment(), n_compute=2)
    mgr = VmSessionManager(testbed)
    mgr.catalog.register("base", small_cfg("base"), applications=("latex",))
    return testbed, mgr


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


def test_create_session_end_to_end():
    testbed, mgr = make_manager()
    session = run(testbed.env, mgr.create_session(
        "alice", ImageRequirements(applications=("latex",))))
    assert session.vm is not None and session.vm.running
    assert session.account.leased_to == "alice"
    assert mgr.active_sessions == 1
    # Clone landed on the chosen compute node's local disk.
    local = testbed.compute[session.compute_index].local.fs
    assert local.exists(f"/sessions/alice-vm1/vm.cfg")


def test_sessions_round_robin_compute_nodes():
    testbed, mgr = make_manager()
    s1 = run(testbed.env, mgr.create_session(
        "alice", ImageRequirements()))
    s2 = run(testbed.env, mgr.create_session(
        "bob", ImageRequirements()))
    assert {s1.compute_index, s2.compute_index} == {0, 1}


def test_end_session_flushes_and_releases():
    testbed, mgr = make_manager()
    session = run(testbed.env, mgr.create_session("alice",
                                                  ImageRequirements()))
    run(testbed.env, mgr.end_session(session))
    assert session.closed
    assert mgr.active_sessions == 0
    assert mgr.accounts.account_of("alice") is None
    assert mgr.consistency.log  # the FLUSH signal was recorded


def test_end_session_twice_rejected():
    testbed, mgr = make_manager()
    session = run(testbed.env, mgr.create_session("alice",
                                                  ImageRequirements()))
    run(testbed.env, mgr.end_session(session))
    box = {}

    def wrapper(env):
        try:
            yield env.process(mgr.end_session(session))
        except RuntimeError as exc:
            box["err"] = str(exc)

    testbed.env.process(wrapper(testbed.env))
    testbed.env.run()
    assert "closed" in box["err"]


def test_register_existing_shares_archived_image():
    from repro.storage.vfs import FileSystem
    fs = FileSystem()
    cat1 = ImageCatalog(fs)
    cat1.register("base", small_cfg("base"))
    cat2 = ImageCatalog(fs)
    image = cat2.register_existing("base", applications=("latex",))
    assert image.config.name == "base"
    assert cat2.best_match(ImageRequirements(applications=("latex",))) \
        is image
    with pytest.raises(ValueError):
        cat2.register_existing("base")
