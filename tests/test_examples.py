"""Smoke tests: the quick example scripts run clean end to end.

(The slower examples — scenario_comparison, cloning_farm,
live_migration — exercise the same code paths as the benchmarks and are
exercised there; these three keep the documented entry points honest.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "read 32 MB through the proxy chain" in out
    assert "zero-filtered reads" in out
    assert "channel fetches     : 1" in out


def test_interactive_workspace_example():
    out = run_example("interactive_workspace.py")
    assert "workspace ready for alice" in out
    assert "session closed" in out
    assert "SIGUSR2" in out


def test_figure1_grid_example():
    out = run_example("figure1_grid.py")
    assert "VM1 ready" in out and "VM2 ready" in out and "VM3 ready" in out
    assert "user data landed on the right data servers" in out
