"""Property-based tests on the sparse file and VFS invariants."""

from hypothesis import given, settings, strategies as st

from repro.storage.vfs import CHUNK_SIZE, FileSystem, SparseFile

# Offsets spanning a few chunk boundaries keep the search space relevant.
offsets = st.integers(min_value=0, max_value=3 * CHUNK_SIZE)
blobs = st.binary(min_size=0, max_size=2 * CHUNK_SIZE)


@given(st.lists(st.tuples(offsets, blobs), max_size=12))
def test_sparse_file_matches_reference_bytearray(ops):
    """A SparseFile behaves exactly like a flat bytearray under writes."""
    f = SparseFile()
    reference = bytearray()
    for offset, data in ops:
        f.write(offset, data)
        if offset + len(data) > len(reference):
            reference.extend(bytes(offset + len(data) - len(reference)))
        reference[offset:offset + len(data)] = data
    assert f.size == len(reference)
    assert f.read(0, f.size) == bytes(reference)


@given(st.lists(st.tuples(offsets, blobs), max_size=8), offsets, offsets)
def test_sparse_file_partial_reads_consistent(ops, read_off, read_len):
    f = SparseFile()
    for offset, data in ops:
        f.write(offset, data)
    whole = f.read(0, f.size)
    window = f.read(read_off, read_len)
    expected = whole[read_off:read_off + read_len]
    assert window == expected


@given(st.lists(st.tuples(offsets, blobs), max_size=8))
def test_iter_chunks_reconstructs_content(ops):
    """Zero-run coalescing in iter_chunks loses no information."""
    f = SparseFile()
    for offset, data in ops:
        f.write(offset, data)
    rebuilt = bytearray()
    for part in f.iter_chunks():
        if isinstance(part, int):
            rebuilt.extend(bytes(part))
        else:
            rebuilt.extend(part)
    assert bytes(rebuilt) == f.read(0, f.size)


@given(st.lists(st.tuples(offsets, blobs), max_size=8),
       st.integers(min_value=0, max_value=4 * CHUNK_SIZE))
def test_truncate_then_read_is_prefix(ops, new_size):
    f = SparseFile()
    for offset, data in ops:
        f.write(offset, data)
    before = f.read(0, f.size)
    f.truncate(new_size)
    after = f.read(0, f.size)
    if new_size <= len(before):
        assert after == before[:new_size]
    else:
        assert after == before + bytes(new_size - len(before))


@given(st.lists(st.tuples(offsets, blobs), max_size=6))
def test_zero_chunk_indices_agree_with_content(ops):
    f = SparseFile()
    for offset, data in ops:
        f.write(offset, data)
    zeros = set(f.zero_chunk_indices())
    for idx in range(f.n_chunks()):
        length = min(CHUNK_SIZE, f.size - idx * CHUNK_SIZE)
        chunk = f.read(idx * CHUNK_SIZE, length)
        assert (chunk.count(0) == len(chunk)) == (idx in zeros)


names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)


@given(st.lists(names, min_size=1, max_size=6, unique=True),
       st.binary(max_size=64))
@settings(max_examples=50)
def test_fs_create_write_read_roundtrip(parts, payload):
    fs = FileSystem()
    dirpath = ""
    for part in parts[:-1]:
        dirpath += "/" + part
        fs.mkdir(dirpath)
    path = dirpath + "/" + parts[-1]
    fs.create(path)
    fs.write(path, payload)
    assert fs.read(path) == payload
    assert fs.lookup(path).size == len(payload)


@given(st.lists(names, min_size=2, max_size=8, unique=True))
@settings(max_examples=50)
def test_fs_namespace_operations_consistent(all_names):
    """Create N files, delete every other one; listing matches a set model."""
    fs = FileSystem()
    model = set()
    for name in all_names:
        fs.create("/" + name)
        model.add(name)
    for name in list(model)[::2]:
        fs.unlink("/" + name)
        model.discard(name)
    assert fs.readdir("/") == sorted(model)
