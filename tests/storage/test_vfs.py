"""Unit tests for the in-memory VFS and sparse files."""

import pytest

from repro.storage.vfs import (
    CHUNK_SIZE,
    ContentSource,
    FileSystem,
    FsError,
    Inode,
    SparseFile,
)


class PatternSource(ContentSource):
    """Deterministic non-zero content for even chunks, zeros for odd."""

    def chunk(self, index):
        if index % 2 == 0:
            return bytes([index % 251 + 1]) * CHUNK_SIZE
        return bytes(CHUNK_SIZE)

    def is_zero(self, index):
        return index % 2 == 1


# -- SparseFile ---------------------------------------------------------------

def test_empty_file_reads_nothing():
    f = SparseFile()
    assert f.size == 0
    assert f.read(0, 100) == b""


def test_unwritten_ranges_read_zero():
    f = SparseFile(size=100)
    assert f.read(0, 100) == bytes(100)


def test_write_then_read_roundtrip():
    f = SparseFile()
    f.write(10, b"hello world")
    assert f.read(10, 11) == b"hello world"
    assert f.size == 21
    assert f.read(0, 10) == bytes(10)


def test_write_across_chunk_boundary():
    f = SparseFile()
    data = bytes(range(256)) * 100  # 25600 bytes, > 3 chunks
    f.write(CHUNK_SIZE - 13, data)
    assert f.read(CHUNK_SIZE - 13, len(data)) == data


def test_read_past_eof_is_short():
    f = SparseFile()
    f.write(0, b"abc")
    assert f.read(1, 100) == b"bc"
    assert f.read(3, 10) == b""
    assert f.read(100, 5) == b""


def test_overwrite_merges_with_existing():
    f = SparseFile()
    f.write(0, b"A" * 100)
    f.write(50, b"B" * 10)
    assert f.read(0, 100) == b"A" * 50 + b"B" * 10 + b"A" * 40


def test_negative_offsets_rejected():
    f = SparseFile()
    with pytest.raises(ValueError):
        f.read(-1, 10)
    with pytest.raises(ValueError):
        f.read(0, -10)
    with pytest.raises(ValueError):
        f.write(-1, b"x")
    with pytest.raises(ValueError):
        SparseFile(size=-1)


def test_truncate_shrink_drops_data():
    f = SparseFile()
    f.write(0, b"X" * (3 * CHUNK_SIZE))
    f.truncate(CHUNK_SIZE + 100)
    assert f.size == CHUNK_SIZE + 100
    # Re-extend: tail must read as zeros.
    f.truncate(2 * CHUNK_SIZE)
    assert f.read(CHUNK_SIZE + 100, 100) == bytes(100)
    assert f.read(CHUNK_SIZE, 100) == b"X" * 100


def test_truncate_negative_rejected():
    with pytest.raises(ValueError):
        SparseFile().truncate(-1)


def test_content_source_provides_initial_content():
    f = SparseFile(size=4 * CHUNK_SIZE, source=PatternSource())
    assert f.read(0, 4) == bytes([1]) * 4
    assert f.read(CHUNK_SIZE, 4) == bytes(4)  # odd chunk: zeros
    assert f.materialized_chunks == 0  # reading does not materialize


def test_write_overrides_source():
    f = SparseFile(size=2 * CHUNK_SIZE, source=PatternSource())
    f.write(0, b"ZZZZ")
    assert f.read(0, 4) == b"ZZZZ"
    assert f.read(4, 4) == bytes([1]) * 4  # rest of chunk keeps source data


def test_chunk_is_zero_uses_source_hint():
    f = SparseFile(size=4 * CHUNK_SIZE, source=PatternSource())
    assert not f.chunk_is_zero(0)
    assert f.chunk_is_zero(1)
    f.write(CHUNK_SIZE, b"\x01")
    assert not f.chunk_is_zero(1)
    # Overwriting the lone non-zero byte makes the chunk all-zero again,
    # and zero-ness must now be detected by scanning the materialized data.
    f.write(CHUNK_SIZE, b"\x00")
    assert f.chunk_is_zero(1)
    assert f.read(CHUNK_SIZE, 2) == bytes(2)


def test_zero_chunk_indices():
    f = SparseFile(size=4 * CHUNK_SIZE, source=PatternSource())
    assert f.zero_chunk_indices() == [1, 3]


def test_iter_chunks_coalesces_zero_runs():
    f = SparseFile(size=5 * CHUNK_SIZE)
    f.write(2 * CHUNK_SIZE, b"data")
    parts = list(f.iter_chunks())
    assert parts[0] == 2 * CHUNK_SIZE          # leading zero run
    assert isinstance(parts[1], bytes)          # the data chunk
    assert parts[2] == 2 * CHUNK_SIZE          # trailing zero run


def test_iter_chunks_respects_partial_tail():
    f = SparseFile(size=CHUNK_SIZE + 100)
    total = sum(p if isinstance(p, int) else len(p) for p in f.iter_chunks())
    assert total == CHUNK_SIZE + 100


def test_copy_is_logically_independent():
    f = SparseFile()
    f.write(0, b"orig")
    c = f.copy()
    c.write(0, b"copy")
    assert f.read(0, 4) == b"orig"
    assert c.read(0, 4) == b"copy"


# -- FileSystem ----------------------------------------------------------------

def test_mkdir_create_lookup():
    fs = FileSystem()
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    node = fs.create("/a/b/f.txt")
    assert fs.lookup("/a/b/f.txt") is node
    assert fs.readdir("/a") == ["b"]


def test_mkdir_parents():
    fs = FileSystem()
    fs.mkdir("/x/y/z", parents=True)
    assert fs.exists("/x/y/z")


def test_create_exclusive_conflict():
    fs = FileSystem()
    fs.create("/f")
    with pytest.raises(FsError) as e:
        fs.create("/f")
    assert e.value.code == "EEXIST"
    # Non-exclusive create returns the existing file.
    assert fs.create("/f", exclusive=False) is fs.lookup("/f")


def test_lookup_missing_raises_enoent():
    fs = FileSystem()
    with pytest.raises(FsError) as e:
        fs.lookup("/nope")
    assert e.value.code == "ENOENT"


def test_relative_path_rejected():
    fs = FileSystem()
    with pytest.raises(FsError) as e:
        fs.lookup("relative/path")
    assert e.value.code == "EINVAL"


def test_file_as_directory_raises_enotdir():
    fs = FileSystem()
    fs.create("/f")
    with pytest.raises(FsError) as e:
        fs.lookup("/f/child")
    assert e.value.code == "ENOTDIR"


def test_read_write_through_fs():
    fs = FileSystem()
    fs.create("/data")
    fs.write("/data", b"content", offset=5)
    assert fs.read("/data") == bytes(5) + b"content"
    assert fs.read("/data", offset=5, count=7) == b"content"


def test_symlink_followed_on_lookup():
    fs = FileSystem()
    fs.mkdir("/real")
    fs.create("/real/file")
    fs.write("/real/file", b"via-link")
    fs.symlink("/alias", "/real")
    assert fs.read("/alias/file") == b"via-link"
    assert fs.readlink("/alias") == "/real"
    assert fs.lookup("/alias", follow=False).kind == Inode.SYMLINK


def test_symlink_loop_detected():
    fs = FileSystem()
    fs.symlink("/a", "/b")
    fs.symlink("/b", "/a")
    with pytest.raises(FsError) as e:
        fs.lookup("/a")
    assert e.value.code == "ELOOP"


def test_readlink_on_regular_file_rejected():
    fs = FileSystem()
    fs.create("/f")
    with pytest.raises(FsError) as e:
        fs.readlink("/f")
    assert e.value.code == "EINVAL"


def test_unlink_file_and_stale_inode():
    fs = FileSystem()
    node = fs.create("/f")
    fs.unlink("/f")
    assert not fs.exists("/f")
    with pytest.raises(FsError) as e:
        fs.get_inode(node.fileid)
    assert e.value.code == "ESTALE"


def test_unlink_directory_rejected():
    fs = FileSystem()
    fs.mkdir("/d")
    with pytest.raises(FsError) as e:
        fs.unlink("/d")
    assert e.value.code == "EISDIR"


def test_rmdir_requires_empty():
    fs = FileSystem()
    fs.mkdir("/d")
    fs.create("/d/f")
    with pytest.raises(FsError) as e:
        fs.rmdir("/d")
    assert e.value.code == "ENOTEMPTY"
    fs.unlink("/d/f")
    fs.rmdir("/d")
    assert not fs.exists("/d")


def test_rename_moves_and_replaces():
    fs = FileSystem()
    fs.create("/a")
    fs.write("/a", b"A")
    fs.create("/b")
    fs.rename("/a", "/b")
    assert not fs.exists("/a")
    assert fs.read("/b") == b"A"


def test_rename_missing_source():
    fs = FileSystem()
    with pytest.raises(FsError) as e:
        fs.rename("/missing", "/dst")
    assert e.value.code == "ENOENT"


def test_get_inode_by_fileid():
    fs = FileSystem()
    node = fs.create("/f")
    assert fs.get_inode(node.fileid) is node
    assert fs.get_inode(1) is fs.root


def test_fileids_are_unique_and_stable():
    fs = FileSystem()
    ids = {fs.create(f"/f{i}").fileid for i in range(50)}
    assert len(ids) == 50


def test_walk_files():
    fs = FileSystem()
    fs.mkdir("/a/b", parents=True)
    fs.create("/a/f1")
    fs.create("/a/b/f2")
    paths = [p for p, _ in fs.walk_files("/")]
    assert paths == ["/a/b/f2", "/a/f1"]


def test_mtime_updates_on_write():
    ticks = iter(range(1, 100))
    fs = FileSystem(clock=lambda: next(ticks))
    node = fs.create("/f")
    before = node.mtime
    fs.write("/f", b"x")
    assert node.mtime > before
