"""Tests for the disk timing model and the timed local filesystem."""

import pytest

from repro.sim import Environment
from repro.storage.disk import Disk, DiskParams, SCSI_2003
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import CHUNK_SIZE


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    env.process(wrapper(env))
    env.run()
    return box


# -- Disk -----------------------------------------------------------------------

def test_random_read_pays_positioning():
    env = Environment()
    params = DiskParams(positioning=0.005, bandwidth=1e6, overhead=0)
    disk = Disk(env, params)
    stream = object()
    box = run(env, disk.read(stream, 0, 1000))
    assert box["t"] == pytest.approx(0.005 + 0.001)


def test_sequential_read_skips_positioning():
    env = Environment()
    params = DiskParams(positioning=0.005, bandwidth=1e6, overhead=0)
    disk = Disk(env, params)
    stream = object()

    def proc(env):
        yield env.process(disk.read(stream, 0, 1000))
        first = env.now
        yield env.process(disk.read(stream, 1000, 1000))
        return first, env.now

    box = run(env, proc(env))
    first, second = box["value"]
    assert first == pytest.approx(0.006)
    assert second - first == pytest.approx(0.001)  # no positioning


def test_interleaved_streams_stay_sequential_with_switch_cost():
    """Two interleaved sequential streams keep per-stream continuity;
    hopping between them costs only the small elevator switch penalty."""
    env = Environment()
    params = DiskParams(positioning=0.005, bandwidth=1e6, overhead=0,
                        stream_switch=0.001)
    disk = Disk(env, params)
    a, b = object(), object()

    def proc(env):
        yield env.process(disk.read(a, 0, 1000))      # seek (first touch)
        yield env.process(disk.read(b, 0, 1000))      # seek (first touch)
        yield env.process(disk.read(a, 1000, 1000))   # sequential + switch
        yield env.process(disk.read(b, 1000, 1000))   # sequential + switch
        return env.now

    box = run(env, proc(env))
    assert box["value"] == pytest.approx(2 * 0.006 + 2 * 0.002)
    assert disk.seeks == 2


def test_random_offsets_still_pay_positioning():
    env = Environment()
    params = DiskParams(positioning=0.005, bandwidth=1e6, overhead=0)
    disk = Disk(env, params)
    s = object()

    def proc(env):
        yield env.process(disk.read(s, 0, 1000))
        yield env.process(disk.read(s, 500_000, 1000))  # discontinuity
        return env.now

    box = run(env, proc(env))
    assert box["value"] == pytest.approx(2 * 0.006)
    assert disk.seeks == 2


def test_disk_queueing_serializes():
    env = Environment()
    params = DiskParams(positioning=0.0, bandwidth=1e3, overhead=0)
    disk = Disk(env, params)
    times = []

    def proc(env, stream):
        yield env.process(disk.read(stream, 0, 1000))
        times.append(env.now)

    env.process(proc(env, object()))
    env.process(proc(env, object()))
    env.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_disk_statistics():
    env = Environment()
    disk = Disk(env, SCSI_2003)
    s = object()
    run(env, disk.read(s, 0, 4096))
    env2 = Environment()
    disk2 = Disk(env2, SCSI_2003)
    run(env2, disk2.write(s, 0, 4096))
    assert disk.reads == 1 and disk.bytes_read == 4096
    assert disk2.writes == 1 and disk2.bytes_written == 4096


def test_bad_access_rejected():
    env = Environment()
    disk = Disk(env, SCSI_2003)

    def proc(env):
        yield env.process(disk.read(object(), -1, 10))

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()


# -- LocalFileSystem ------------------------------------------------------------

def test_timed_read_returns_data():
    env = Environment()
    lfs = LocalFileSystem(env)
    lfs.fs.create("/f")
    lfs.fs.write("/f", b"payload")
    box = run(env, lfs.timed_read("/f", 0, 7))
    assert box["value"] == b"payload"
    assert box["t"] > 0


def test_page_cache_hit_is_free():
    env = Environment()
    lfs = LocalFileSystem(env)
    lfs.fs.create("/f", size=CHUNK_SIZE)

    def proc(env):
        yield env.process(lfs.timed_read("/f", 0, CHUNK_SIZE))
        first = env.now
        yield env.process(lfs.timed_read("/f", 0, CHUNK_SIZE))
        return first, env.now

    box = run(env, proc(env))
    first, second = box["value"]
    assert first > 0
    assert second == first  # cache hit: zero simulated time
    assert lfs.cache_hits == 1


def test_drop_caches_forces_disk_again():
    env = Environment()
    lfs = LocalFileSystem(env)
    lfs.fs.create("/f", size=CHUNK_SIZE)

    def proc(env):
        yield env.process(lfs.timed_read("/f", 0, CHUNK_SIZE))
        lfs.drop_caches()
        t0 = env.now
        yield env.process(lfs.timed_read("/f", 0, CHUNK_SIZE))
        return env.now - t0

    box = run(env, proc(env))
    assert box["value"] > 0


def test_page_cache_eviction_lru():
    env = Environment()
    lfs = LocalFileSystem(env, page_cache_bytes=2 * CHUNK_SIZE)
    lfs.fs.create("/f", size=10 * CHUNK_SIZE)

    def proc(env):
        for i in range(3):  # touch chunks 0,1,2 -> 0 evicted
            yield env.process(lfs.timed_read("/f", i * CHUNK_SIZE, CHUNK_SIZE))
        t0 = env.now
        yield env.process(lfs.timed_read("/f", 0, CHUNK_SIZE))
        return env.now - t0

    box = run(env, proc(env))
    assert box["value"] > 0  # chunk 0 had been evicted


def test_async_write_fast_then_sync_waits():
    env = Environment()
    lfs = LocalFileSystem(env)
    lfs.fs.create("/f")

    def proc(env):
        yield env.process(lfs.timed_write("/f", b"x" * 1024 * 1024))
        async_done = env.now
        yield env.process(lfs.sync())
        return async_done, env.now

    box = run(env, proc(env))
    async_done, synced = box["value"]
    disk_time = 1024 * 1024 / SCSI_2003.bandwidth
    assert async_done < disk_time  # returned before media write
    assert synced >= disk_time * 0.9
    assert lfs.dirty_bytes == 0


def test_writer_blocks_above_dirty_limit():
    env = Environment()
    lfs = LocalFileSystem(env)
    lfs.dirty_limit = 1024
    lfs.fs.create("/f")

    def proc(env):
        yield env.process(lfs.timed_write("/f", b"y" * 100 * 1024))
        return env.now

    box = run(env, proc(env))
    assert box["value"] > 0  # had to wait for the flusher


def test_sync_write_charged_immediately():
    env = Environment()
    lfs = LocalFileSystem(env)
    lfs.fs.create("/f")
    box = run(env, lfs.timed_write("/f", b"z" * 4096, 0, True))
    assert box["t"] >= 4096 / SCSI_2003.bandwidth


def test_timed_read_inode_equivalent_to_path():
    env = Environment()
    lfs = LocalFileSystem(env)
    inode = lfs.fs.create("/f")
    lfs.fs.write("/f", b"abc123")
    box = run(env, lfs.timed_read_inode(inode, 2, 3))
    assert box["value"] == b"c12"
