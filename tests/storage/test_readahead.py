"""Tests for adaptive readahead and write-behind in LocalFileSystem."""

import pytest

from repro.sim import Environment
from repro.storage.disk import DiskParams
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import CHUNK_SIZE


def make_lfs(positioning=0.005, bandwidth=40e6):
    env = Environment()
    lfs = LocalFileSystem(env, disk_params=DiskParams(
        positioning=positioning, bandwidth=bandwidth, overhead=0))
    return env, lfs


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    env.process(wrapper(env))
    env.run()
    return box


def sequential_read(lfs, inode, total, chunk=CHUNK_SIZE):
    offset = 0
    while offset < total:
        yield from lfs.timed_scan_inode(inode, offset, chunk)
        offset += chunk


def test_sequential_reads_trigger_readahead():
    env, lfs = make_lfs()
    inode = lfs.fs.create("/big", size=2 * 1024 * 1024)
    run(env, sequential_read(lfs, inode, 2 * 1024 * 1024))
    # One disk access per ~readahead window, not per chunk.
    expected_windows = 2 * 1024 * 1024 / lfs.readahead_bytes
    assert lfs.disk.reads < expected_windows * 2.5
    assert lfs.readahead_fills > 0


def test_sequential_read_is_transfer_bound():
    env, lfs = make_lfs()
    size = 4 * 1024 * 1024
    inode = lfs.fs.create("/big", size=size)
    box = run(env, sequential_read(lfs, inode, size))
    transfer_floor = size / 40e6
    assert box["t"] < transfer_floor * 2.5  # seeks amortized away


def test_random_reads_do_not_readahead():
    env, lfs = make_lfs()
    inode = lfs.fs.create("/big", size=8 * 1024 * 1024)

    def random_reads(env):
        # Stride across the file: never sequential.
        for i in range(32):
            offset = (i * 37 % 1000) * CHUNK_SIZE
            yield from lfs.timed_scan_inode(inode, offset, CHUNK_SIZE)

    before = lfs.readahead_fills
    run(env, random_reads(env))
    assert lfs.readahead_fills == before  # no windows pulled
    assert lfs.disk.reads >= 30           # ~one access per read


def test_readahead_does_not_cross_eof():
    env, lfs = make_lfs()
    size = CHUNK_SIZE * 3 + 100
    inode = lfs.fs.create("/small", size=size)
    run(env, sequential_read(lfs, inode, size))
    # All cached chunks are within the file.
    for fileid, idx in lfs._page_cache:
        assert idx * CHUNK_SIZE < size


def test_readahead_warms_subsequent_chunks():
    env, lfs = make_lfs()
    inode = lfs.fs.create("/f", size=1024 * 1024)

    def proc(env):
        yield from lfs.timed_scan_inode(inode, 0, CHUNK_SIZE)
        yield from lfs.timed_scan_inode(inode, CHUNK_SIZE, CHUNK_SIZE)
        t0 = env.now
        # Chunk 2..16 were pulled by the window: free.
        yield from lfs.timed_scan_inode(inode, 2 * CHUNK_SIZE, CHUNK_SIZE)
        return env.now - t0

    box = run(env, proc(env))
    assert box["value"] == 0.0


def test_write_behind_overlaps_with_reads():
    """The writer's foreground cost is tiny (write-behind), a concurrent
    reader shares the arm without starving, and the data still reaches
    the disk."""
    env, lfs = make_lfs()
    reader_inode = lfs.fs.create("/r", size=1024 * 1024)
    writer_inode = lfs.fs.create("/w")

    def writer(env):
        t0 = env.now
        yield from lfs.timed_write_inode(writer_inode, b"z" * (4 << 20), 0)
        return env.now - t0

    def reader(env):
        t0 = env.now
        yield from sequential_read(lfs, reader_inode, 1024 * 1024)
        return env.now - t0

    box = {}

    def driver(env):
        w = env.process(writer(env))
        r = env.process(reader(env))
        box["read_time"] = yield r
        box["write_fg_time"] = yield w
        yield from lfs.sync()

    env.process(driver(env))
    env.run()
    drain_alone = (4 << 20) / 40e6
    # Foreground write returned in a fraction of the media time...
    assert box["write_fg_time"] < drain_alone / 2
    # ...the reader interleaved with the flusher rather than queueing
    # behind the whole drain...
    assert box["read_time"] < drain_alone * 2
    # ...and everything ended up on disk.
    assert lfs.dirty_bytes == 0
    assert lfs.disk.bytes_written >= (4 << 20)
