"""Tests for the command-line front end."""

import pytest

from repro.cli import BENCH_TARGETS, build_parser, main


def test_parser_accepts_known_targets():
    parser = build_parser()
    for target in [*BENCH_TARGETS, "all"]:
        args = parser.parse_args(["bench", target])
        assert args.target == target


def test_parser_rejects_unknown_target():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["bench", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info_command_prints_calibration(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Calibration constants" in out
    assert "38 ms RTT" in out
    assert "gzip" in out


def test_faultbench_rejects_unknown_scenario(capsys):
    assert main(["faultbench", "--scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_faultbench_proxy_restart_quick(capsys, tmp_path):
    out_file = tmp_path / "bench.json"
    assert main(["faultbench", "--scenario", "proxy_restart", "--quick",
                 "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "proxy_restart" in out and "lost 0" in out
    import json
    report = json.loads(out_file.read_text())
    scenario = report["scenarios"]["proxy_restart"]
    assert scenario["lost_writes"] == 0
    assert scenario["lost_writes_without_journal"] > 0
    assert scenario["replay_identical"] is True


def test_bench_zero_runs_and_reports(capsys):
    assert main(["bench", "zero"]) == 0
    out = capsys.readouterr().out
    assert "65537 NFS reads" in out
    assert "92" in out


def test_fleetbench_parser_defaults():
    args = build_parser().parse_args(["fleetbench", "--quick"])
    assert args.quick and args.sessions is None and args.modes is None
    assert args.fleet_report is False


def test_fleetbench_rejects_unknown_mode(capsys):
    assert main(["fleetbench", "--quick", "--modes", "warp"]) == 2
    assert "unknown mode" in capsys.readouterr().err


def test_fleetbench_quick_exact_storm(capsys, tmp_path):
    out_file = tmp_path / "fleet.json"
    assert main(["fleetbench", "--quick", "--sessions", "4", "--sites", "2",
                 "--modes", "exact,sharded", "--processes", "2",
                 "--fleet-report", "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "engine microbench" in out
    assert "sharded" in out
    assert "fleet: 2 session(s)" in out      # --fleet-report sections
    import json
    report = json.loads(out_file.read_text())
    assert report["storm"]["exact"]["sessions"] == 4
    assert report["fluid_accuracy"]
    assert fleetbench_gates_pass(report)


def fleetbench_gates_pass(report):
    from repro.experiments import fleetbench
    return fleetbench.check_report(report) == []


def test_chaosbench_quick_sweep(capsys, tmp_path):
    out_file = tmp_path / "chaos.json"
    assert main(["chaosbench", "--quick", "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "chaosbench" in out and "negative control" in out
    import json
    report = json.loads(out_file.read_text())
    assert report["n_cells"] >= 24
    assert all(cell["corrupted_bytes_served"] == 0
               and cell["lost_writes"] == 0
               for cell in report["cells"].values())
    assert report["negative_control"]["corrupted_bytes_served"] > 0
    assert report["golden"]["identical"] is True
