"""Tests for the command-line front end."""

import pytest

from repro.cli import BENCH_TARGETS, build_parser, main


def test_parser_accepts_known_targets():
    parser = build_parser()
    for target in [*BENCH_TARGETS, "all"]:
        args = parser.parse_args(["bench", target])
        assert args.target == target


def test_parser_rejects_unknown_target():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["bench", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info_command_prints_calibration(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Calibration constants" in out
    assert "38 ms RTT" in out
    assert "gzip" in out


def test_faultbench_rejects_unknown_scenario(capsys):
    assert main(["faultbench", "--scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_faultbench_proxy_restart_quick(capsys, tmp_path):
    out_file = tmp_path / "bench.json"
    assert main(["faultbench", "--scenario", "proxy_restart", "--quick",
                 "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "proxy_restart" in out and "lost 0" in out
    import json
    report = json.loads(out_file.read_text())
    scenario = report["scenarios"]["proxy_restart"]
    assert scenario["lost_writes"] == 0
    assert scenario["lost_writes_without_journal"] > 0
    assert scenario["replay_identical"] is True


def test_bench_zero_runs_and_reports(capsys):
    assert main(["bench", "zero"]) == 0
    out = capsys.readouterr().out
    assert "65537 NFS reads" in out
    assert "92" in out


def test_fleetbench_parser_defaults():
    args = build_parser().parse_args(["fleetbench", "--quick"])
    assert args.quick and args.sessions is None and args.modes is None
    assert args.fleet_report is False


def test_fleetbench_rejects_unknown_mode(capsys):
    assert main(["fleetbench", "--quick", "--modes", "warp"]) == 2
    assert "unknown mode" in capsys.readouterr().err


def test_fleetbench_quick_exact_storm(capsys, tmp_path):
    out_file = tmp_path / "fleet.json"
    assert main(["fleetbench", "--quick", "--sessions", "4", "--sites", "2",
                 "--modes", "exact,sharded", "--processes", "2",
                 "--fleet-report", "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "engine microbench" in out
    assert "sharded" in out
    assert "fleet: 2 session(s)" in out      # --fleet-report sections
    import json
    report = json.loads(out_file.read_text())
    assert report["storm"]["exact"]["sessions"] == 4
    assert report["fluid_accuracy"]
    assert fleetbench_gates_pass(report)


def fleetbench_gates_pass(report):
    from repro.experiments import fleetbench
    return fleetbench.check_report(report) == []


BENCH_CMDS = {
    # subcommand -> (experiments module name, run_* function name)
    "faultbench": ("faultbench", "run_faultbench"),
    "chaosbench": ("chaosbench", "run_chaosbench"),
    "cascadebench": ("cascadebench", "run_cascadebench"),
    "coopbench": ("coopbench", "run_coopbench"),
    "fleetbench": ("fleetbench", "run_fleetbench"),
    "farmbench": ("farmbench", "run_farmbench"),
}


@pytest.mark.parametrize("cmd", sorted(BENCH_CMDS))
@pytest.mark.parametrize("failures, expected", [([], 0), (["boom"], 1)])
def test_bench_subcommands_share_gate_exit_codes(cmd, failures, expected,
                                                 monkeypatch, capsys):
    """Every bench subcommand turns check_report failures into exit 1
    (and a clean report into exit 0) through the same code path."""
    import importlib
    mod_name, run_name = BENCH_CMDS[cmd]
    mod = importlib.import_module(f"repro.experiments.{mod_name}")
    monkeypatch.setattr(mod, run_name,
                        lambda *a, **k: {"fake": True, "storm": {}})
    monkeypatch.setattr(mod, "format_report", lambda report: "fake table")
    monkeypatch.setattr(mod, "check_report",
                        lambda report, baseline=None: list(failures))
    assert main([cmd, "--quick"]) == expected
    captured = capsys.readouterr()
    assert "fake table" in captured.out
    if failures:
        assert "boom" in captured.err and "violated" in captured.err
    else:
        assert captured.err == ""


@pytest.mark.parametrize("failures, expected", [([], 0), (["slow"], 1)])
def test_perf_shares_gate_exit_codes(failures, expected, monkeypatch,
                                     capsys):
    from repro.experiments import perf
    from repro.scenario import runner

    class FakeReport:
        samples = {}

        def to_dict(self):
            return {"bench": "pr2", "fake": True}

    monkeypatch.setattr(perf, "run_harness",
                        lambda *a, **k: FakeReport())
    monkeypatch.setattr(perf, "format_report", lambda report: "fake perf")
    monkeypatch.setattr(runner, "perf_gate_failures",
                        lambda report, max_slowdown: list(failures))
    assert main(["perf", "--quick"]) == expected
    captured = capsys.readouterr()
    assert "fake perf" in captured.out
    if failures:
        assert "slow" in captured.err and "violated" in captured.err


def test_scenario_list_shows_library(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("fault_smoke", "fleet_rollout", "perf_smoke"):
        assert name in out


def test_scenario_check_ok_and_unknown(capsys):
    assert main(["scenario", "check", "fleet_rollout"]) == 0
    out = capsys.readouterr().out
    assert "fleet_rollout: OK" in out and "gates:" in out
    assert main(["scenario", "check", "no_such_spec"]) == 2
    assert "no scenario" in capsys.readouterr().err


def test_scenario_run_unknown_spec_is_usage_error(capsys):
    assert main(["scenario", "run", "no_such_spec"]) == 2
    assert "no scenario" in capsys.readouterr().err


def test_scenario_run_invalid_spec_file_is_usage_error(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "kind": "fleet", "bogus": 1}')
    assert main(["scenario", "run", str(bad)]) == 2
    assert "bogus" in capsys.readouterr().err


def _tiny_spec(tmp_path, max_s):
    import json
    doc = {
        "name": "cli-tiny",
        "kind": "fleet",
        "topology": {"peers": 1,
                     "images": [{"name": "img", "memory_mb": 4,
                                 "disk_gb": 0.0625, "metadata": True}]},
        "sessions": {"client_cache_mb": 8},
        "phases": [{"name": "storm", "kind": "clone_storm",
                    "image": "img"}],
        "gates": [{"name": "makespan_ceiling",
                   "params": {"phase": "storm", "max_s": max_s}}],
    }
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(doc))
    return path


def test_scenario_run_gate_failure_needs_check_flag(capsys, tmp_path):
    path = _tiny_spec(tmp_path, max_s=0.001)   # gate must fail
    assert main(["scenario", "run", str(path), "--quick"]) == 0
    assert "[FAIL] makespan_ceiling" in capsys.readouterr().out
    assert main(["scenario", "run", str(path), "--quick", "--check"]) == 1
    captured = capsys.readouterr()
    assert "gates failed" in captured.err
    assert "makespan_ceiling" in captured.err


def test_scenario_run_writes_validated_envelope(capsys, tmp_path):
    import json
    path = _tiny_spec(tmp_path, max_s=10000.0)
    out_file = tmp_path / "BENCH_tiny.json"
    assert main(["scenario", "run", str(path), "--quick", "--check",
                 "--out", str(out_file)]) == 0
    envelope = json.loads(out_file.read_text())
    assert envelope["benchmark"] == "scenario"
    assert envelope["scenario"] == "cli-tiny"
    assert envelope["ok"] is True
    from repro.scenario.schema import validate_report
    assert validate_report(envelope) == []


def test_chaosbench_quick_sweep(capsys, tmp_path):
    out_file = tmp_path / "chaos.json"
    assert main(["chaosbench", "--quick", "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "chaosbench" in out and "negative control" in out
    import json
    report = json.loads(out_file.read_text())
    assert report["n_cells"] >= 24
    assert all(cell["corrupted_bytes_served"] == 0
               and cell["lost_writes"] == 0
               for cell in report["cells"].values())
    assert report["negative_control"]["corrupted_bytes_served"] > 0
    assert report["golden"]["identical"] is True
