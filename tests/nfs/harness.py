"""Shared wiring helpers for NFS-layer tests."""

from repro.net.link import Link, Route
from repro.nfs.client import MountOptions, NfsClient
from repro.nfs.rpc import LoopbackTransport, RpcClient
from repro.nfs.server import NfsServer
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem


class Stack:
    """env + server + one mounted client, over loopback or a real route."""

    def __init__(self, latency: float = 0.0, bandwidth: float = 1e9,
                 options: MountOptions = MountOptions()):
        self.env = Environment()
        self.server_fs = LocalFileSystem(self.env, name="server")
        self.server = NfsServer(self.env, self.server_fs, fsid="test")
        if latency == 0.0:
            out = back = LoopbackTransport(self.env)
        else:
            out = Route([Link(self.env, latency, bandwidth, name="c2s")])
            back = Route([Link(self.env, latency, bandwidth, name="s2c")])
        self.rpc = RpcClient(self.env, self.server, out, back)
        self.client = NfsClient(self.env)
        self.mount = self.client.mount("/mnt", self.rpc, self.server.root_fh,
                                       options)

    def run(self, gen):
        """Drive one process to completion; return (value, finish_time)."""
        box = {}

        def wrapper(env):
            box["value"] = yield env.process(gen)
            box["t"] = env.now

        self.env.process(wrapper(self.env))
        self.env.run()
        return box["value"], box["t"]
