"""Property-based tests: the NFS client is a faithful remote file API."""

from hypothesis import given, settings, strategies as st

from repro.nfs.client import MountOptions
from tests.nfs.harness import Stack

offsets = st.integers(min_value=0, max_value=40_000)
blobs = st.binary(min_size=1, max_size=12_000)
write_ops = st.lists(st.tuples(offsets, blobs), min_size=1, max_size=8)


@given(write_ops)
@settings(max_examples=25, deadline=None)
def test_client_writes_match_reference_after_close(ops):
    """Arbitrary write sequences through the full client (staging,
    flusher, partial-block RMW) land byte-identically on the server."""
    s = Stack()
    s.server_fs.fs.create("/f")
    reference = bytearray()

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        for offset, data in ops:
            yield env.process(f.write(offset, data))
        yield env.process(f.close())

    for offset, data in ops:
        if offset + len(data) > len(reference):
            reference.extend(bytes(offset + len(data) - len(reference)))
        reference[offset:offset + len(data)] = data
    s.run(proc(s.env))
    assert s.server_fs.fs.read("/f") == bytes(reference)


@given(write_ops, offsets, st.integers(min_value=0, max_value=20_000))
@settings(max_examples=25, deadline=None)
def test_read_your_writes_any_window(ops, read_off, read_len):
    """Before any flush, reads see exactly the staged state."""
    s = Stack(latency=0.050, bandwidth=1e6)  # slow link: flush lags
    s.server_fs.fs.create("/f")
    reference = bytearray()
    box = {}

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        for offset, data in ops:
            yield env.process(f.write(offset, data))
        box["got"] = yield env.process(f.read(read_off, read_len))
        yield env.process(f.close())

    for offset, data in ops:
        if offset + len(data) > len(reference):
            reference.extend(bytes(offset + len(data) - len(reference)))
        reference[offset:offset + len(data)] = data
    s.run(proc(s.env))
    expected = bytes(reference[read_off:read_off + read_len])
    assert box["got"] == expected


@given(st.lists(st.tuples(offsets, blobs), min_size=1, max_size=5),
       st.integers(min_value=2, max_value=3))
@settings(max_examples=20, deadline=None)
def test_v2_and_v3_mounts_agree_on_content(ops, version):
    """Protocol version changes timing, never bytes."""
    s = Stack(options=MountOptions(nfs_version=version))
    s.server_fs.fs.create("/f")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        for offset, data in ops:
            yield env.process(f.write(offset, data))
        yield env.process(f.close())

    s.run(proc(s.env))
    reference = bytearray()
    for offset, data in ops:
        if offset + len(data) > len(reference):
            reference.extend(bytes(offset + len(data) - len(reference)))
        reference[offset:offset + len(data)] = data
    assert s.server_fs.fs.read("/f") == bytes(reference)
