"""Tests of the NFS server against the protocol subset."""

import pytest

from repro.nfs.protocol import FileHandle, NfsProc, NfsRequest, NfsStatus
from tests.nfs.harness import Stack


def call(stack, request):
    reply, _ = stack.run(stack.server.handle(request))
    return reply


def test_null():
    s = Stack()
    assert call(s, NfsRequest(NfsProc.NULL)).ok


def test_getattr_of_root():
    s = Stack()
    reply = call(s, NfsRequest(NfsProc.GETATTR, fh=s.server.root_fh))
    assert reply.ok
    assert reply.attrs.kind == "dir"
    assert reply.attrs.fileid == 1


def test_lookup_and_read():
    s = Stack()
    s.server_fs.fs.create("/hello")
    s.server_fs.fs.write("/hello", b"world")
    look = call(s, NfsRequest(NfsProc.LOOKUP, fh=s.server.root_fh, name="hello"))
    assert look.ok and look.attrs.size == 5
    read = call(s, NfsRequest(NfsProc.READ, fh=look.fh, offset=0, count=100))
    assert read.ok
    assert read.data == b"world"
    assert read.eof


def test_lookup_missing_is_noent():
    s = Stack()
    reply = call(s, NfsRequest(NfsProc.LOOKUP, fh=s.server.root_fh, name="no"))
    assert reply.status is NfsStatus.NOENT


def test_stale_handle():
    s = Stack()
    reply = call(s, NfsRequest(NfsProc.GETATTR, fh=FileHandle("test", 999)))
    assert reply.status is NfsStatus.STALE
    foreign = call(s, NfsRequest(NfsProc.GETATTR, fh=FileHandle("other", 1)))
    assert foreign.status is NfsStatus.STALE


def test_write_then_read_back():
    s = Stack()
    created = call(s, NfsRequest(NfsProc.CREATE, fh=s.server.root_fh, name="f"))
    assert created.ok
    wrote = call(s, NfsRequest(NfsProc.WRITE, fh=created.fh, offset=3,
                               data=b"abc", stable=True))
    assert wrote.ok and wrote.count == 3
    assert s.server_fs.fs.read("/f") == bytes(3) + b"abc"


def test_create_exclusive_conflict():
    s = Stack()
    call(s, NfsRequest(NfsProc.CREATE, fh=s.server.root_fh, name="f"))
    dup = call(s, NfsRequest(NfsProc.CREATE, fh=s.server.root_fh, name="f"))
    assert dup.status is NfsStatus.EXIST
    unchecked = call(s, NfsRequest(NfsProc.CREATE, fh=s.server.root_fh,
                                   name="f", exclusive=False))
    assert unchecked.ok


def test_mkdir_readdir_rmdir():
    s = Stack()
    made = call(s, NfsRequest(NfsProc.MKDIR, fh=s.server.root_fh, name="d"))
    assert made.ok and made.attrs.kind == "dir"
    call(s, NfsRequest(NfsProc.CREATE, fh=made.fh, name="inner"))
    listing = call(s, NfsRequest(NfsProc.READDIR, fh=made.fh))
    assert listing.entries == ("inner",)
    busy = call(s, NfsRequest(NfsProc.RMDIR, fh=s.server.root_fh, name="d"))
    assert busy.status is NfsStatus.NOTEMPTY
    call(s, NfsRequest(NfsProc.REMOVE, fh=made.fh, name="inner"))
    gone = call(s, NfsRequest(NfsProc.RMDIR, fh=s.server.root_fh, name="d"))
    assert gone.ok


def test_symlink_and_readlink():
    s = Stack()
    made = call(s, NfsRequest(NfsProc.SYMLINK, fh=s.server.root_fh,
                              name="ln", target="/real"))
    assert made.ok and made.attrs.kind == "symlink"
    link = call(s, NfsRequest(NfsProc.READLINK, fh=made.fh))
    assert link.target == "/real"
    notlink = call(s, NfsRequest(NfsProc.CREATE, fh=s.server.root_fh, name="f"))
    bad = call(s, NfsRequest(NfsProc.READLINK, fh=notlink.fh))
    assert bad.status is NfsStatus.INVAL


def test_rename():
    s = Stack()
    created = call(s, NfsRequest(NfsProc.CREATE, fh=s.server.root_fh, name="a"))
    call(s, NfsRequest(NfsProc.WRITE, fh=created.fh, offset=0, data=b"v"))
    moved = call(s, NfsRequest(NfsProc.RENAME, fh=s.server.root_fh, name="a",
                               to_fh=s.server.root_fh, to_name="b"))
    assert moved.ok
    assert s.server_fs.fs.read("/b") == b"v"
    assert not s.server_fs.fs.exists("/a")


def test_setattr_truncate():
    s = Stack()
    created = call(s, NfsRequest(NfsProc.CREATE, fh=s.server.root_fh, name="f"))
    call(s, NfsRequest(NfsProc.WRITE, fh=created.fh, offset=0, data=b"x" * 100))
    cut = call(s, NfsRequest(NfsProc.SETATTR, fh=created.fh, size=10))
    assert cut.ok and cut.attrs.size == 10


def test_commit_flushes_server_writeback():
    s = Stack()
    created = call(s, NfsRequest(NfsProc.CREATE, fh=s.server.root_fh, name="f"))

    def sequence(env):
        yield env.process(s.server.handle(NfsRequest(
            NfsProc.WRITE, fh=created.fh, offset=0,
            data=b"z" * 65536, stable=False)))
        staged = s.server_fs.dirty_bytes  # sampled before the flusher drains
        done = yield env.process(s.server.handle(
            NfsRequest(NfsProc.COMMIT, fh=created.fh)))
        return staged, done.ok, s.server_fs.dirty_bytes

    (staged, ok, after), _ = s.run(sequence(s.env))
    assert staged > 0
    assert ok
    assert after == 0


def test_read_of_directory_is_isdir():
    s = Stack()
    reply = call(s, NfsRequest(NfsProc.READ, fh=s.server.root_fh, count=10))
    assert reply.status is NfsStatus.ISDIR


def test_read_charges_disk_time():
    s = Stack()
    s.server_fs.fs.create("/big", size=1 << 20)
    look = call(s, NfsRequest(NfsProc.LOOKUP, fh=s.server.root_fh, name="big"))
    _, t = s.run(s.server.handle(
        NfsRequest(NfsProc.READ, fh=look.fh, offset=0, count=8192)))
    assert t > s.server.op_cpu  # positioning + transfer included


def test_nfsd_pool_bounds_concurrency():
    s = Stack()
    s.server_fs.fs.create("/f", size=1 << 20)
    look = call(s, NfsRequest(NfsProc.LOOKUP, fh=s.server.root_fh, name="f"))
    finish = []

    def one(env, i):
        reply = yield env.process(s.server.handle(
            NfsRequest(NfsProc.READ, fh=look.fh, offset=i * 8192, count=8192)))
        assert reply.ok
        finish.append(env.now)

    for i in range(20):
        s.env.process(one(s.env, i))
    s.env.run()
    assert len(finish) == 20
    # With an 8-thread pool and a single disk arm, finishes are spread out.
    assert len(set(finish)) > 1
