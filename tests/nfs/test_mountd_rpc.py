"""Tests for the MOUNT daemon, RPC retransmission, and NFSv2 mode."""

import pytest

from repro.nfs.client import MountOptions
from repro.nfs.mountd import Export, MountDaemon, MountError
from repro.nfs.protocol import NfsProc, NfsReply, NfsRequest, NfsStatus
from repro.nfs.rpc import LoopbackTransport, RpcClient, RpcTimeout
from repro.sim import Environment
from tests.nfs.harness import Stack


# -- MountDaemon ---------------------------------------------------------------

def make_mountd():
    s = Stack()
    s.server_fs.fs.mkdir("/exports")
    s.server_fs.fs.mkdir("/exports/images")
    s.server_fs.fs.create("/exports/images/file")
    mountd = MountDaemon(s.env, s.server)
    return s, mountd


def test_export_and_showmount():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("localhost", "compute0"))
    listing = mountd.exports()
    assert len(listing) == 1
    assert listing[0].path == "/exports"
    assert listing[0].admits("compute0")
    assert not listing[0].admits("evil-host")


def test_export_requires_existing_directory():
    s, mountd = make_mountd()
    with pytest.raises(MountError):
        mountd.add_export("/nope")
    with pytest.raises(MountError):
        mountd.add_export("/exports/images/file")  # not a directory


def test_mount_authorized_host_gets_handle():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("compute0",))
    fh, _ = s.run(mountd.mount("compute0", "/exports/images"))
    assert fh == s.server.fh_for_path("/exports/images")
    assert ("compute0", "/exports") in mountd.active_mounts()


def test_mount_refuses_unknown_export_and_host():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("compute0",))

    def attempt(host, path):
        def proc(env):
            try:
                yield env.process(mountd.mount(host, path))
                return "granted"
            except MountError as exc:
                return exc.code
        value, _ = s.run(proc(s.env))
        return value

    assert attempt("evil", "/exports") == "EACCES"
    assert attempt("compute0", "/private") == "EACCES"
    assert attempt("compute0", "/exports/missing") == "ENOENT"


def test_wildcard_export_admits_everyone():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("*",))
    fh, _ = s.run(mountd.mount("anyone", "/exports"))
    assert fh == s.server.fh_for_path("/exports")


def test_longest_prefix_export_wins():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("a",))
    mountd.add_export("/exports/images", clients=("b",))
    # /exports/images is governed by the more specific export.
    def attempt(host):
        def proc(env):
            try:
                yield env.process(mountd.mount(host, "/exports/images"))
                return "granted"
            except MountError as exc:
                return exc.code
        value, _ = s.run(proc(s.env))
        return value
    assert attempt("b") == "granted"
    assert attempt("a") == "EACCES"


def test_unmount_clears_record():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("c0",))
    s.run(mountd.mount("c0", "/exports"))
    s.run(mountd.unmount("c0", "/exports"))
    assert mountd.active_mounts() == []


def test_remove_export():
    s, mountd = make_mountd()
    mountd.add_export("/exports")
    mountd.remove_export("/exports")
    assert mountd.exports() == []
    with pytest.raises(MountError):
        mountd.remove_export("/exports")


# -- RPC retransmission -----------------------------------------------------------

class SlowHandler:
    """Handler whose first ``slow_calls`` services take ``delay`` seconds."""

    def __init__(self, env, delay, slow_calls=10**9):
        self.env = env
        self.delay = delay
        self.slow_calls = slow_calls
        self.served = 0

    def handle(self, request):
        self.served += 1
        if self.served <= self.slow_calls:
            yield self.env.timeout(self.delay)
        else:
            yield self.env.timeout(0.001)
        return NfsReply(request.proc, NfsStatus.OK)


def test_fast_call_no_retransmission():
    env = Environment()
    handler = SlowHandler(env, delay=0.01)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=1.0)
    box = {}

    def proc(env):
        box["reply"] = yield from rpc.call(NfsRequest(NfsProc.NULL))

    env.process(proc(env))
    env.run()
    assert box["reply"].ok
    assert rpc.stats.retransmissions == 0


def test_slow_server_triggers_retransmit_then_succeeds():
    env = Environment()
    handler = SlowHandler(env, delay=5.0, slow_calls=1)  # only 1st is slow
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=1.0, max_retries=3)
    box = {}

    def proc(env):
        box["reply"] = yield from rpc.call(NfsRequest(NfsProc.NULL))
        box["t"] = env.now

    env.process(proc(env))
    env.run()
    assert box["reply"].ok
    assert rpc.stats.retransmissions == 1
    assert 1.0 < box["t"] < 2.0  # 1 timeout + quick second attempt


def test_unresponsive_server_raises_rpc_timeout():
    env = Environment()
    handler = SlowHandler(env, delay=100.0)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=0.5, max_retries=2)
    box = {}

    def proc(env):
        try:
            yield from rpc.call(NfsRequest(NfsProc.NULL))
        except RpcTimeout as exc:
            box["err"] = str(exc)
            box["t"] = env.now

    env.process(proc(env))
    env.run(until=200)
    assert "unanswered" in box["err"]
    assert box["t"] == pytest.approx(3 * 0.5)  # initial + 2 retries
    assert rpc.stats.retransmissions == 3


def test_timeout_none_waits_forever():
    env = Environment()
    handler = SlowHandler(env, delay=50.0)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop)  # no timeout
    box = {}

    def proc(env):
        box["reply"] = yield from rpc.call(NfsRequest(NfsProc.NULL))
        box["t"] = env.now

    env.process(proc(env))
    env.run()
    assert box["reply"].ok
    assert box["t"] > 50


# -- NFSv2 mode --------------------------------------------------------------------

def test_nfs_version_validation():
    with pytest.raises(ValueError):
        MountOptions(nfs_version=4)


def test_v2_writes_are_stable_and_commit_free():
    s = Stack(options=MountOptions(nfs_version=2))
    s.server_fs.fs.create("/f")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(0, b"v2-data"))
        yield env.process(f.close())

    s.run(proc(s.env))
    assert s.server_fs.fs.read("/f") == b"v2-data"
    assert s.rpc.stats.by_proc.get("COMMIT", 0) == 0
    assert s.rpc.stats.by_proc.get("WRITE", 0) >= 1


def test_v3_close_issues_commit():
    s = Stack(options=MountOptions(nfs_version=3))
    s.server_fs.fs.create("/f")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(0, b"v3-data"))
        yield env.process(f.close())

    s.run(proc(s.env))
    assert s.rpc.stats.by_proc.get("COMMIT", 0) == 1


def test_v2_writes_slower_over_wan():
    """Stable v2 writes pay the server disk's positioning on every
    scattered RPC; v3 stages them unstable and the server's write-behind
    coalesces — so v2 is strictly slower on a scattered burst."""
    def write_time(version):
        s = Stack(latency=0.019, bandwidth=12.5e6,
                  options=MountOptions(nfs_version=version))
        s.server_fs.fs.create("/f")

        def proc(env):
            f = yield env.process(s.mount.open("/f"))
            t0 = env.now
            for i in range(32):  # scattered 8 KB writes across the file
                yield env.process(f.write(i * 1024 * 1024, b"w" * 8192))
            yield env.process(f.close())
            return env.now - t0

        value, _ = s.run(proc(s.env))
        return value

    v2, v3 = write_time(2), write_time(3)
    assert v2 > v3 * 1.1
