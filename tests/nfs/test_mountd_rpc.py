"""Tests for the MOUNT daemon, RPC retransmission, and NFSv2 mode."""

import pytest

from repro.nfs.client import MountOptions
from repro.nfs.mountd import Export, MountDaemon, MountError
from repro.nfs.protocol import NfsProc, NfsReply, NfsRequest, NfsStatus
from repro.nfs.rpc import LoopbackTransport, RpcClient, RpcTimeout
from repro.sim import Environment
from tests.nfs.harness import Stack


# -- MountDaemon ---------------------------------------------------------------

def make_mountd():
    s = Stack()
    s.server_fs.fs.mkdir("/exports")
    s.server_fs.fs.mkdir("/exports/images")
    s.server_fs.fs.create("/exports/images/file")
    mountd = MountDaemon(s.env, s.server)
    return s, mountd


def test_export_and_showmount():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("localhost", "compute0"))
    listing = mountd.exports()
    assert len(listing) == 1
    assert listing[0].path == "/exports"
    assert listing[0].admits("compute0")
    assert not listing[0].admits("evil-host")


def test_export_requires_existing_directory():
    s, mountd = make_mountd()
    with pytest.raises(MountError):
        mountd.add_export("/nope")
    with pytest.raises(MountError):
        mountd.add_export("/exports/images/file")  # not a directory


def test_mount_authorized_host_gets_handle():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("compute0",))
    fh, _ = s.run(mountd.mount("compute0", "/exports/images"))
    assert fh == s.server.fh_for_path("/exports/images")
    assert ("compute0", "/exports") in mountd.active_mounts()


def test_mount_refuses_unknown_export_and_host():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("compute0",))

    def attempt(host, path):
        def proc(env):
            try:
                yield env.process(mountd.mount(host, path))
                return "granted"
            except MountError as exc:
                return exc.code
        value, _ = s.run(proc(s.env))
        return value

    assert attempt("evil", "/exports") == "EACCES"
    assert attempt("compute0", "/private") == "EACCES"
    assert attempt("compute0", "/exports/missing") == "ENOENT"


def test_wildcard_export_admits_everyone():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("*",))
    fh, _ = s.run(mountd.mount("anyone", "/exports"))
    assert fh == s.server.fh_for_path("/exports")


def test_longest_prefix_export_wins():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("a",))
    mountd.add_export("/exports/images", clients=("b",))
    # /exports/images is governed by the more specific export.
    def attempt(host):
        def proc(env):
            try:
                yield env.process(mountd.mount(host, "/exports/images"))
                return "granted"
            except MountError as exc:
                return exc.code
        value, _ = s.run(proc(s.env))
        return value
    assert attempt("b") == "granted"
    assert attempt("a") == "EACCES"


def test_unmount_clears_record():
    s, mountd = make_mountd()
    mountd.add_export("/exports", clients=("c0",))
    s.run(mountd.mount("c0", "/exports"))
    s.run(mountd.unmount("c0", "/exports"))
    assert mountd.active_mounts() == []


def test_remove_export():
    s, mountd = make_mountd()
    mountd.add_export("/exports")
    mountd.remove_export("/exports")
    assert mountd.exports() == []
    with pytest.raises(MountError):
        mountd.remove_export("/exports")


# -- RPC retransmission -----------------------------------------------------------

class SlowHandler:
    """Handler whose first ``slow_calls`` services take ``delay`` seconds."""

    def __init__(self, env, delay, slow_calls=10**9):
        self.env = env
        self.delay = delay
        self.slow_calls = slow_calls
        self.served = 0

    def handle(self, request):
        self.served += 1
        if self.served <= self.slow_calls:
            yield self.env.timeout(self.delay)
        else:
            yield self.env.timeout(0.001)
        return NfsReply(request.proc, NfsStatus.OK)


def test_fast_call_no_retransmission():
    env = Environment()
    handler = SlowHandler(env, delay=0.01)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=1.0)
    box = {}

    def proc(env):
        box["reply"] = yield from rpc.call(NfsRequest(NfsProc.NULL))

    env.process(proc(env))
    env.run()
    assert box["reply"].ok
    assert rpc.stats.retransmissions == 0


def test_slow_server_triggers_retransmit_then_succeeds():
    env = Environment()
    handler = SlowHandler(env, delay=5.0, slow_calls=1)  # only 1st is slow
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=1.0, max_retries=3)
    box = {}

    def proc(env):
        box["reply"] = yield from rpc.call(NfsRequest(NfsProc.NULL))
        box["t"] = env.now

    env.process(proc(env))
    env.run()
    assert box["reply"].ok
    assert rpc.stats.retransmissions == 1
    assert 1.0 < box["t"] < 2.0  # 1 timeout + quick second attempt


def test_unresponsive_server_raises_rpc_timeout():
    env = Environment()
    handler = SlowHandler(env, delay=100.0)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=0.5, max_retries=2)
    box = {}

    def proc(env):
        try:
            yield from rpc.call(NfsRequest(NfsProc.NULL))
        except RpcTimeout as exc:
            box["err"] = str(exc)
            box["t"] = env.now

    env.process(proc(env))
    env.run(until=200)
    assert "unanswered" in box["err"]
    # Exponential backoff: 0.5 + 1.0 + 2.0 (initial + 2 retries, x2 each).
    assert box["t"] == pytest.approx(0.5 + 1.0 + 2.0)
    assert rpc.stats.retransmissions == 3
    # Satellite: every attempt's wire bytes are counted, not just one.
    assert rpc.stats.attempts == 3
    assert rpc.stats.by_proc["NULL"] == 3
    req_bytes = NfsRequest(NfsProc.NULL).wire_size()
    assert rpc.stats.bytes_sent == 3 * req_bytes


def test_backoff_interval_is_capped():
    env = Environment()
    handler = SlowHandler(env, delay=1000.0)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=1.0, max_retries=4,
                    backoff=4.0, max_timeout=5.0)
    box = {}

    def proc(env):
        try:
            yield from rpc.call(NfsRequest(NfsProc.NULL))
        except RpcTimeout:
            box["t"] = env.now

    env.process(proc(env))
    env.run()
    # Intervals 1, 4, then clamped to the 5 s cap: 1 + 4 + 5 + 5 + 5.
    assert box["t"] == pytest.approx(1 + 4 + 5 + 5 + 5)


def test_call_deadline_bounds_total_wait():
    env = Environment()
    handler = SlowHandler(env, delay=1000.0)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=1.0, max_retries=100,
                    backoff=1.0)
    box = {}

    def proc(env):
        try:
            yield from rpc.call(NfsRequest(NfsProc.NULL), deadline=2.5)
        except RpcTimeout:
            box["t"] = env.now

    env.process(proc(env))
    env.run()
    # Attempts at 0, 1, 2; the last timer is clamped to the deadline.
    assert box["t"] == pytest.approx(2.5)
    assert rpc.stats.attempts == 3


def test_circuit_breaker_trips_then_recovers():
    from repro.nfs.rpc import RpcCircuitBreaker, RpcCircuitOpen

    env = Environment()
    handler = SlowHandler(env, delay=1000.0, slow_calls=2)
    loop = LoopbackTransport(env)
    breaker = RpcCircuitBreaker(env, failure_threshold=2, reset_after=10.0)
    rpc = RpcClient(env, handler, loop, loop, timeout=0.25, max_retries=0,
                    breaker=breaker)
    box = {"fast": 0}

    def proc(env):
        for _ in range(2):          # two timed-out calls trip the breaker
            try:
                yield from rpc.call(NfsRequest(NfsProc.NULL))
            except RpcTimeout:
                pass
        assert breaker.state == breaker.OPEN
        t_open = env.now
        try:
            yield from rpc.call(NfsRequest(NfsProc.NULL))
        except RpcCircuitOpen:
            box["fast"] += 1
        # Fail-fast costs zero simulated time and no attempt.
        assert env.now == t_open
        yield env.timeout(10.1)     # past reset_after: half-open probe
        reply = yield from rpc.call(NfsRequest(NfsProc.NULL))
        assert reply.ok
        assert breaker.state == breaker.CLOSED

    env.process(proc(env))
    env.run()
    assert box["fast"] == 1
    assert breaker.trips == 1
    assert breaker.fast_failures == 1
    assert breaker.probes == 1
    assert rpc.stats.fast_failures == 1
    assert rpc.stats.attempts == 3  # 2 failed + 1 probe; fast-fail sent none


def test_timed_out_attempts_are_cancelled():
    """Satellite regression: abandoned attempts must not keep running.

    Without cancellation every timed-out attempt's process lives on
    inside the handler (here: a 10000 s service), eventually resuming,
    finishing service and transmitting a reply nobody wants — leaked
    work that grows the engine's event count per failed call.  With
    cancellation no abandoned attempt ever reaches the reply leg, and
    each failed call schedules the same bounded number of events.
    """
    env = Environment()
    handler = SlowHandler(env, delay=10000.0)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop, timeout=0.1, max_retries=1,
                    backoff=1.0)
    deltas = []

    def proc(env):
        prev = None
        for _ in range(6):
            try:
                yield from rpc.call(NfsRequest(NfsProc.NULL))
            except RpcTimeout:
                pass
            if prev is not None:
                deltas.append(env.events_scheduled - prev)
            prev = env.events_scheduled

    env.process(proc(env))
    events_at_last_failure = []

    def watcher(env):
        # Sample the event count right after the workload finishes; the
        # run itself drains to t=10000 because the engine does not
        # deschedule the cancelled attempts' pending timeouts (they
        # fire with no callbacks attached).
        yield env.timeout(5.0)
        events_at_last_failure.append(env.events_scheduled)

    env.process(watcher(env))
    env.run()
    # 12 attempts issued (6 calls x 2): 12 request transmits, and not a
    # single reply transmit from a cancelled attempt's service.
    assert rpc.stats.attempts == 12
    assert loop.messages == 12
    assert len(set(deltas)) == 1, f"per-call event cost drifted: {deltas}"
    # Nothing but the leftover no-op timer pops happens after the calls:
    # the leaked-process version would do CPU + transmit work out here.
    assert env.events_scheduled - events_at_last_failure[0] <= 12


def test_timeout_none_waits_forever():
    env = Environment()
    handler = SlowHandler(env, delay=50.0)
    loop = LoopbackTransport(env)
    rpc = RpcClient(env, handler, loop, loop)  # no timeout
    box = {}

    def proc(env):
        box["reply"] = yield from rpc.call(NfsRequest(NfsProc.NULL))
        box["t"] = env.now

    env.process(proc(env))
    env.run()
    assert box["reply"].ok
    assert box["t"] > 50


# -- NFSv2 mode --------------------------------------------------------------------

def test_nfs_version_validation():
    with pytest.raises(ValueError):
        MountOptions(nfs_version=4)


def test_v2_writes_are_stable_and_commit_free():
    s = Stack(options=MountOptions(nfs_version=2))
    s.server_fs.fs.create("/f")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(0, b"v2-data"))
        yield env.process(f.close())

    s.run(proc(s.env))
    assert s.server_fs.fs.read("/f") == b"v2-data"
    assert s.rpc.stats.by_proc.get("COMMIT", 0) == 0
    assert s.rpc.stats.by_proc.get("WRITE", 0) >= 1


def test_v3_close_issues_commit():
    s = Stack(options=MountOptions(nfs_version=3))
    s.server_fs.fs.create("/f")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(0, b"v3-data"))
        yield env.process(f.close())

    s.run(proc(s.env))
    assert s.rpc.stats.by_proc.get("COMMIT", 0) == 1


def test_v2_writes_slower_over_wan():
    """Stable v2 writes pay the server disk's positioning on every
    scattered RPC; v3 stages them unstable and the server's write-behind
    coalesces — so v2 is strictly slower on a scattered burst."""
    def write_time(version):
        s = Stack(latency=0.019, bandwidth=12.5e6,
                  options=MountOptions(nfs_version=version))
        s.server_fs.fs.create("/f")

        def proc(env):
            f = yield env.process(s.mount.open("/f"))
            t0 = env.now
            for i in range(32):  # scattered 8 KB writes across the file
                yield env.process(f.write(i * 1024 * 1024, b"w" * 8192))
            yield env.process(f.close())
            return env.now - t0

        value, _ = s.run(proc(s.env))
        return value

    v2, v3 = write_time(2), write_time(3)
    assert v2 > v3 * 1.1
