"""Unit tests for NFS protocol messages."""

import pytest

from repro.nfs.protocol import (
    RPC_OVERHEAD_BYTES,
    FileHandle,
    NfsError,
    NfsProc,
    NfsReply,
    NfsRequest,
    NfsStatus,
)


def test_filehandle_value_semantics():
    a = FileHandle("fs", 7)
    b = FileHandle("fs", 7)
    c = FileHandle("fs", 8)
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert len({a, b, c}) == 2


def test_request_wire_size_includes_write_payload():
    fh = FileHandle("fs", 1)
    small = NfsRequest(NfsProc.GETATTR, fh=fh)
    big = NfsRequest(NfsProc.WRITE, fh=fh, data=b"x" * 8192)
    assert small.wire_size() == RPC_OVERHEAD_BYTES
    assert big.wire_size() == RPC_OVERHEAD_BYTES + 8192


def test_request_wire_size_includes_names():
    fh = FileHandle("fs", 1)
    req = NfsRequest(NfsProc.LOOKUP, fh=fh, name="abcde")
    assert req.wire_size() == RPC_OVERHEAD_BYTES + 5


def test_reply_wire_size_includes_read_payload_and_entries():
    read = NfsReply(NfsProc.READ, NfsStatus.OK, data=b"y" * 100)
    assert read.wire_size() == RPC_OVERHEAD_BYTES + 100
    listing = NfsReply(NfsProc.READDIR, NfsStatus.OK, entries=("a", "bb"))
    assert listing.wire_size() == RPC_OVERHEAD_BYTES + (1 + 8) + (2 + 8)


def test_reply_ok_and_raise_for_status():
    ok = NfsReply(NfsProc.NULL, NfsStatus.OK)
    assert ok.ok
    assert ok.raise_for_status() is ok
    bad = NfsReply(NfsProc.READ, NfsStatus.STALE)
    assert not bad.ok
    with pytest.raises(NfsError) as e:
        bad.raise_for_status("ctx")
    assert e.value.status is NfsStatus.STALE
    assert "ctx" in str(e.value)


def test_request_replace_rewrites_fields():
    fh1, fh2 = FileHandle("a", 1), FileHandle("b", 2)
    req = NfsRequest(NfsProc.READ, fh=fh1, offset=0, count=10)
    rewritten = req.replace(fh=fh2, credentials=(500, 500))
    assert rewritten.fh == fh2
    assert rewritten.credentials == (500, 500)
    assert rewritten.count == 10
    assert req.fh == fh1  # original untouched
