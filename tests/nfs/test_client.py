"""Tests for the NFS client: resolution, caching, write-behind, consistency."""

import pytest

from repro.nfs.client import MountOptions
from repro.nfs.protocol import NfsError, NfsStatus
from tests.nfs.harness import Stack


def seed(stack, path, content):
    parts = path.strip("/").split("/")
    for i in range(1, len(parts)):
        prefix = "/" + "/".join(parts[:i])
        if not stack.server_fs.fs.exists(prefix):
            stack.server_fs.fs.mkdir(prefix)
    stack.server_fs.fs.create(path)
    stack.server_fs.fs.write(path, content)


def test_open_read_roundtrip():
    s = Stack()
    seed(s, "/dir/file.txt", b"grid virtual file system")

    def proc(env):
        f = yield env.process(s.mount.open("/dir/file.txt"))
        data = yield env.process(f.read(0, 100))
        return data

    value, _ = s.run(proc(s.env))
    assert value == b"grid virtual file system"


def test_read_window():
    s = Stack()
    seed(s, "/f", bytes(range(200)))

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        return (yield env.process(f.read(50, 25)))

    value, _ = s.run(proc(s.env))
    assert value == bytes(range(50, 75))


def test_read_past_eof_short():
    s = Stack()
    seed(s, "/f", b"abc")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        tail = yield env.process(f.read(2, 50))
        beyond = yield env.process(f.read(10, 5))
        return tail, beyond

    (tail, beyond), _ = s.run(proc(s.env))
    assert tail == b"c"
    assert beyond == b""


def test_open_missing_raises_nfs_error():
    s = Stack()

    def proc(env):
        try:
            yield env.process(s.mount.open("/missing"))
        except NfsError as exc:
            return exc.status

    value, _ = s.run(proc(s.env))
    assert value is NfsStatus.NOENT


def test_buffer_cache_hits_avoid_rpc():
    s = Stack()
    seed(s, "/f", b"x" * 8192)

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.read(0, 8192))
        before = s.rpc.stats.by_proc.get("READ", 0)
        yield env.process(f.read(0, 8192))
        return before, s.rpc.stats.by_proc.get("READ", 0)

    (before, after), _ = s.run(proc(s.env))
    assert before == 1
    assert after == 1  # second read: pure cache hit


def test_write_read_your_writes_before_flush():
    s = Stack(latency=0.050, bandwidth=1e6)  # slow link: flush lags
    seed(s, "/f", b"A" * 16384)

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(100, b"NEW"))
        data = yield env.process(f.read(98, 8))
        return data

    value, _ = s.run(proc(s.env))
    assert value == b"AANEWAAA"


def test_close_flushes_to_server():
    s = Stack()
    seed(s, "/f", b"")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(0, b"durable"))
        yield env.process(f.close())
        return s.server_fs.fs.read("/f")

    value, _ = s.run(proc(s.env))
    assert value == b"durable"


def test_append_extends_file():
    s = Stack()
    seed(s, "/f", b"12345")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(5, b"6789"))
        yield env.process(f.close())
        return f.size, s.server_fs.fs.read("/f")

    (size, server_view), _ = s.run(proc(s.env))
    assert size == 9
    assert server_view == b"123456789"


def test_partial_block_write_preserves_rest():
    s = Stack()
    seed(s, "/f", b"Z" * 20000)

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(9000, b"mid"))
        yield env.process(f.close())
        return s.server_fs.fs.read("/f")

    value, _ = s.run(proc(s.env))
    assert value[:9000] == b"Z" * 9000
    assert value[9000:9003] == b"mid"
    assert value[9003:] == b"Z" * (20000 - 9003)


def test_create_and_write_new_file():
    s = Stack()

    def proc(env):
        f = yield env.process(s.mount.create("/new.bin"))
        yield env.process(f.write(0, b"\x01\x02"))
        yield env.process(f.close())
        return s.server_fs.fs.read("/new.bin")

    value, _ = s.run(proc(s.env))
    assert value == b"\x01\x02"


def test_namespace_operations_through_client():
    s = Stack()

    def proc(env):
        yield env.process(s.mount.mkdir("/d"))
        f = yield env.process(s.mount.create("/d/f"))
        yield env.process(f.close())
        yield env.process(s.mount.symlink("/d/ln", "/d/f"))
        target = yield env.process(s.mount.readlink("/d/ln"))
        names = yield env.process(s.mount.readdir("/d"))
        yield env.process(s.mount.rename("/d/f", "/d/g"))
        yield env.process(s.mount.remove("/d/g"))
        after = yield env.process(s.mount.readdir("/d"))
        return target, names, after

    (target, names, after), _ = s.run(proc(s.env))
    assert target == "/d/f"
    assert names == ["f", "ln"]
    assert after == ["ln"]


def test_symlink_followed_on_open():
    s = Stack()
    seed(s, "/real", b"through the link")

    def proc(env):
        yield env.process(s.mount.symlink("/alias", "/real"))
        f = yield env.process(s.mount.open("/alias"))
        return (yield env.process(f.read(0, 100)))

    value, _ = s.run(proc(s.env))
    assert value == b"through the link"


def test_dirty_limit_throttles_writer():
    opts = MountOptions(dirty_limit=64 * 1024, write_concurrency=1)
    s = Stack(latency=0.010, bandwidth=1e6, options=opts)
    seed(s, "/f", b"")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(0, b"q" * 512 * 1024))
        return env.now

    value, _ = s.run(proc(s.env))
    # Must have waited for several WRITE round trips, not returned at ~0.
    assert value > 0.010 * 10


def test_mtime_change_invalidates_cache_on_open():
    s = Stack(options=MountOptions(attr_timeout=0.0))
    seed(s, "/f", b"old-contents")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        first = yield env.process(f.read(0, 12))
        # Another party rewrites the file server-side.
        yield env.timeout(1)
        s.server_fs.fs.write("/f", b"new-contents")
        f2 = yield env.process(s.mount.open("/f"))
        second = yield env.process(f2.read(0, 12))
        return first, second

    (first, second), _ = s.run(proc(s.env))
    assert first == b"old-contents"
    assert second == b"new-contents"


def test_attr_cache_suppresses_getattr_within_timeout():
    s = Stack(options=MountOptions(attr_timeout=30.0))
    seed(s, "/f", b"data")

    def proc(env):
        yield env.process(s.mount.open("/f"))
        count_after_first = s.rpc.stats.by_proc.get("GETATTR", 0)
        yield env.process(s.mount.open("/f"))
        return count_after_first, s.rpc.stats.by_proc.get("GETATTR", 0)

    (first, second), _ = s.run(proc(s.env))
    assert second == first  # re-open within timeout: no extra GETATTR


def test_drop_caches_requires_clean_state():
    s = Stack(latency=0.050, bandwidth=1e6)
    seed(s, "/f", b"")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(0, b"dirty"))
        try:
            s.mount.drop_caches()
            return "allowed"
        except RuntimeError:
            pass
        yield env.process(s.mount.flush_all())
        s.mount.drop_caches()
        return "ok"

    value, _ = s.run(proc(s.env))
    assert value == "ok"


def test_unmount_flushes():
    s = Stack()
    seed(s, "/f", b"")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.write(0, b"bye"))
        yield env.process(s.client.unmount("/mnt"))
        return s.server_fs.fs.read("/f")

    value, _ = s.run(proc(s.env))
    assert value == b"bye"
    assert "/mnt" not in s.client.mounts


def test_read_all_streams_whole_file():
    s = Stack()
    payload = bytes(i % 256 for i in range(50_000))
    seed(s, "/blob", payload)

    def proc(env):
        f = yield env.process(s.mount.open("/blob"))
        return (yield env.process(f.read_all()))

    value, _ = s.run(proc(s.env))
    assert value == payload


def test_readahead_speeds_up_sequential_wan_reads():
    payload = bytes(512 * 1024)

    def run_with(readahead):
        s = Stack(latency=0.020, bandwidth=12.5e6,
                  options=MountOptions(readahead=readahead))
        seed(s, "/big", payload)

        def proc(env):
            f = yield env.process(s.mount.open("/big"))
            yield env.process(f.read_all())

        _, t = s.run(proc(s.env))
        return t

    serial = run_with(0)
    pipelined = run_with(4)
    assert pipelined < serial * 0.5


def test_truncate_through_client():
    s = Stack()
    seed(s, "/f", b"0123456789")

    def proc(env):
        f = yield env.process(s.mount.open("/f"))
        yield env.process(f.truncate(4))
        attrs = yield env.process(s.mount.stat("/f"))
        return attrs.size, s.server_fs.fs.read("/f")

    (size, data), _ = s.run(proc(s.env))
    assert size == 4
    assert data == b"0123"
