"""Direct unit tests for the kernel buffer cache."""

import pytest

from repro.nfs.buffercache import BufferCache
from repro.nfs.protocol import FileHandle

FH = FileHandle("m", 1)
FH2 = FileHandle("m", 2)


def test_basic_get_put():
    cache = BufferCache(capacity_bytes=4 * 8192)
    assert cache.get((FH, 0)) is None
    cache.put_clean((FH, 0), b"data")
    assert cache.get((FH, 0)) == b"data"
    assert cache.hits == 1 and cache.misses == 1


def test_lru_eviction_order():
    cache = BufferCache(capacity_bytes=2 * 8192)
    cache.put_clean((FH, 0), b"a")
    cache.put_clean((FH, 1), b"b")
    cache.get((FH, 0))              # refresh 0: 1 becomes LRU
    cache.put_clean((FH, 2), b"c")  # evicts 1
    assert cache.peek((FH, 0)) == b"a"
    assert cache.peek((FH, 1)) is None
    assert cache.peek((FH, 2)) == b"c"
    assert cache.evictions == 1


def test_dirty_blocks_pinned_under_pressure():
    cache = BufferCache(capacity_bytes=2 * 8192)
    cache.put_dirty((FH, 0), b"dirty")
    cache.put_clean((FH, 1), b"c1")
    cache.put_clean((FH, 2), b"c2")   # must evict a CLEAN block
    cache.put_clean((FH, 3), b"c3")
    assert cache.peek((FH, 0)) == b"dirty"
    assert cache.dirty_blocks == 1


def test_put_clean_does_not_clobber_dirty():
    cache = BufferCache()
    cache.put_dirty((FH, 0), b"staged")
    cache.put_clean((FH, 0), b"server-version")
    assert cache.peek((FH, 0)) == b"staged"
    cache.mark_clean((FH, 0))
    cache.put_clean((FH, 0), b"server-version")
    assert cache.peek((FH, 0)) == b"server-version"


def test_dirty_keys_sorted_per_file():
    cache = BufferCache()
    cache.put_dirty((FH, 5), b"x")
    cache.put_dirty((FH, 1), b"y")
    cache.put_dirty((FH2, 0), b"z")
    assert cache.dirty_keys_for(FH) == [(FH, 1), (FH, 5)]
    assert cache.any_dirty_key() is not None


def test_invalidate_file_drops_everything_for_that_file():
    cache = BufferCache()
    cache.put_clean((FH, 0), b"a")
    cache.put_dirty((FH, 1), b"b")
    cache.put_clean((FH2, 0), b"other")
    cache.invalidate_file(FH)
    assert cache.peek((FH, 0)) is None
    assert cache.peek((FH, 1)) is None
    assert cache.dirty_blocks == 0
    assert cache.peek((FH2, 0)) == b"other"


def test_clear_and_len():
    cache = BufferCache()
    cache.put_clean((FH, 0), b"a")
    cache.put_dirty((FH, 1), b"b")
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert cache.dirty_blocks == 0


def test_everything_dirty_stops_eviction():
    cache = BufferCache(capacity_bytes=2 * 8192)
    cache.put_dirty((FH, 0), b"a")
    cache.put_dirty((FH, 1), b"b")
    cache.put_dirty((FH, 2), b"c")   # over capacity but all pinned
    assert len(cache) == 3


def test_block_size_validation():
    with pytest.raises(ValueError):
        BufferCache(block_size=0)
