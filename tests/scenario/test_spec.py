"""Spec schema: strict parsing, normalization round-trip, quick merge."""

import pytest

from repro.scenario.spec import (
    ArrivalSpec,
    ScenarioSpec,
    SpecError,
    deep_merge,
)

MINIMAL_FLEET = {
    "name": "t",
    "kind": "fleet",
    "topology": {"peers": 1, "images": [{"name": "img", "memory_mb": 4}]},
    "phases": [{"name": "storm", "kind": "clone_storm", "image": "img"}],
}

MINIMAL_BENCH = {
    "name": "b",
    "kind": "bench",
    "bench": {"driver": "faultbench", "params": {"scenarios": ["wan_blip"]}},
}


def test_round_trip_is_identity():
    for doc in (MINIMAL_FLEET, MINIMAL_BENCH):
        spec = ScenarioSpec.from_dict(doc)
        normalized = spec.to_dict()
        again = ScenarioSpec.from_dict(normalized)
        assert again == spec
        assert again.to_dict() == normalized


def test_normalized_form_is_fully_explicit():
    spec = ScenarioSpec.from_dict(MINIMAL_FLEET)
    doc = spec.to_dict()
    assert doc["seed"] == 0
    assert doc["sessions"]["mode"] == "inclusive"
    assert doc["topology"]["images"][0]["zero_fraction"] == 0.5
    assert doc["phases"][0]["arrival"]["kind"] == "fixed"


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.update(bogus=1), "bogus"),
    (lambda d: d["topology"].update(hosts=2), "hosts"),
    (lambda d: d["topology"]["images"][0].update(sise=1), "sise"),
    (lambda d: d["phases"][0].update(imgae="img"), "imgae"),
    (lambda d: d["phases"][0].update(
        arrival={"kind": "fixed", "stagger": 1}), "stagger"),
])
def test_unknown_keys_rejected_at_every_level(mutate, fragment):
    import copy
    doc = copy.deepcopy(MINIMAL_FLEET)
    mutate(doc)
    with pytest.raises(SpecError, match=fragment):
        ScenarioSpec.from_dict(doc)


@pytest.mark.parametrize("doc, fragment", [
    ({**MINIMAL_FLEET, "kind": "party"}, "kind"),
    ({**MINIMAL_FLEET, "phases": []}, "phase"),
    ({**MINIMAL_FLEET, "phases": [
        {"name": "x", "kind": "clone_storm", "image": "ghost"}]}, "ghost"),
    ({**MINIMAL_FLEET, "phases": [
        {"name": "x", "kind": "trace_load", "reads": 1}]}, "trace_load"),
    ({**MINIMAL_FLEET, "phases": [
        {"name": "x", "kind": "clone_storm", "image": "img"},
        {"name": "x", "kind": "clone_storm", "image": "img"}]},
     "duplicate"),
    ({**MINIMAL_BENCH, "bench": {"driver": ""}}, "driver"),
    ({**MINIMAL_FLEET,
      "faults": [{"kind": "link_flap", "target": "wan", "at": 1.0}]},
     "down_for"),
    ({**MINIMAL_FLEET,
      "faults": [{"kind": "link_flap", "target": "level:2", "at": 1.0,
                  "down_for": 1.0}]}, "depth"),
])
def test_validation_errors(doc, fragment):
    with pytest.raises(SpecError, match=fragment):
        ScenarioSpec.from_dict(doc)


def test_arrival_validation():
    with pytest.raises(SpecError, match="window_s"):
        ArrivalSpec.from_dict({"kind": "uniform"})
    with pytest.raises(SpecError, match="rate_per_s"):
        ArrivalSpec.from_dict({"kind": "poisson"})
    assert ArrivalSpec.from_dict({"kind": "diurnal",
                                  "window_s": 10}).window_s == 10


def test_deep_merge_semantics():
    base = {"a": {"b": 1, "c": [1, 2]}, "d": 5}
    override = {"a": {"c": [9]}, "e": 7}
    merged = deep_merge(base, override)
    assert merged == {"a": {"b": 1, "c": [9]}, "d": 5, "e": 7}
    assert base == {"a": {"b": 1, "c": [1, 2]}, "d": 5}  # untouched


def test_quick_profile_deep_merges():
    doc = {
        **MINIMAL_FLEET,
        "sessions": {"depth": 2, "client_cache_mb": 32},
        "quick": {"topology": {"peers": 1},
                  "sessions": {"client_cache_mb": 8}},
    }
    spec = ScenarioSpec.from_dict(doc)
    quick = spec.quicked()
    # Overridden scalar replaced, sibling fields survive the merge.
    assert quick.sessions.client_cache_mb == 8
    assert quick.sessions.depth == 2
    # Untouched sections carried over, quick section consumed.
    assert quick.topology.images == spec.topology.images
    assert quick.quick == {}
    # A spec without a quick section is its own quick profile.
    assert ScenarioSpec.from_dict(MINIMAL_FLEET).quicked() \
        == ScenarioSpec.from_dict(MINIMAL_FLEET)


def test_quick_profile_list_replacement():
    doc = {
        **MINIMAL_FLEET,
        "quick": {"phases": [{"name": "mini", "kind": "clone_storm",
                              "image": "img"}]},
    }
    quick = ScenarioSpec.from_dict(doc).quicked()
    assert [p.name for p in quick.phases] == ["mini"]


def test_with_seed():
    spec = ScenarioSpec.from_dict(MINIMAL_FLEET)
    assert spec.with_seed(99).seed == 99
    assert spec.with_seed(99).topology == spec.topology


def test_gate_shorthand_and_params():
    doc = {**MINIMAL_FLEET,
           "gates": ["zero_lost_writes",
                     {"name": "makespan_ceiling",
                      "params": {"phase": "storm", "max_s": 10}}]}
    spec = ScenarioSpec.from_dict(doc)
    assert [g.name for g in spec.gates] == ["zero_lost_writes",
                                            "makespan_ceiling"]
    assert spec.gates[1].params["max_s"] == 10
