"""Runner: end-to-end fleet runs, determinism, arrival processes."""

import pytest

from repro.scenario.arrivals import arrival_offsets
from repro.scenario.runner import run_spec
from repro.scenario.schema import validate_report
from repro.scenario.spec import ArrivalSpec, ScenarioSpec

TINY_FLEET = {
    "name": "tiny",
    "kind": "fleet",
    "seed": 5,
    "topology": {"peers": 1,
                 "images": [{"name": "img", "memory_mb": 4,
                             "disk_gb": 0.0625, "metadata": True}]},
    "sessions": {"mode": "inclusive", "depth": 1, "client_cache_mb": 8},
    "phases": [
        {"name": "storm", "kind": "clone_storm", "image": "img"},
        {"name": "load", "kind": "trace_load", "reads": 2, "writes": 1,
         "file_mb": 0.25, "compute_s": 0.5},
    ],
    "gates": ["zero_lost_writes", "integrity",
              {"name": "makespan_ceiling",
               "params": {"phase": "storm", "max_s": 10000}}],
}


@pytest.fixture(scope="module")
def tiny_run():
    return run_spec(ScenarioSpec.from_dict(TINY_FLEET), quick=True)


def test_fleet_run_passes_gates(tiny_run):
    envelope, text = tiny_run
    assert envelope["ok"] is True
    assert envelope["benchmark"] == "scenario"
    assert envelope["kind"] == "fleet"
    assert {g["name"] for g in envelope["gates"]} == {
        "zero_lost_writes", "integrity", "makespan_ceiling"}
    assert all(g["ok"] for g in envelope["gates"])
    assert envelope["metrics"]["lost_writes"] == 0
    assert envelope["metrics"]["integrity_ok"] is True
    assert [p["phase"] for p in envelope["metrics"]["phases"]] == [
        "storm", "load"]
    assert "[PASS]" in text


def test_fleet_envelope_matches_schema(tiny_run):
    envelope, _ = tiny_run
    assert validate_report(envelope) == []


def test_fleet_run_is_bit_identical(tiny_run):
    first, _ = tiny_run
    second, _ = run_spec(ScenarioSpec.from_dict(TINY_FLEET), quick=True)
    assert first == second


def test_seed_perturbs_signature():
    # Fixed staggers are seed-independent, so give the storm a seeded
    # arrival process; the offsets (and hence the signature) must move.
    doc = dict(TINY_FLEET)
    doc["phases"] = [{"name": "storm", "kind": "clone_storm",
                      "image": "img",
                      "arrival": {"kind": "uniform", "window_s": 40.0}}]
    spec = ScenarioSpec.from_dict(doc)
    base, _ = run_spec(spec, quick=True)
    other, _ = run_spec(spec.with_seed(6), quick=True)
    assert other["seed"] == 6
    assert (other["metrics"]["sim_signature"]
            != base["metrics"]["sim_signature"])


def test_bench_kind_runs_driver_and_validates():
    spec = ScenarioSpec.from_dict({
        "name": "bench-t",
        "kind": "bench",
        "seed": 11,
        "bench": {"driver": "faultbench",
                  "params": {"scenarios": ["wan_blip"]}},
    })
    envelope, text = run_spec(spec, quick=True)
    assert envelope["ok"] is True
    assert envelope["driver"] == "faultbench"
    assert envelope["gates"][0]["name"] == "check_report"
    assert validate_report(envelope) == []
    assert "wan_blip" in text


def test_failing_gate_flips_ok():
    doc = dict(TINY_FLEET)
    doc["gates"] = [{"name": "makespan_ceiling",
                     "params": {"phase": "storm", "max_s": 0.001}}]
    envelope, text = run_spec(ScenarioSpec.from_dict(doc), quick=True)
    assert envelope["ok"] is False
    assert envelope["gates"][0]["ok"] is False
    assert "[FAIL]" in text


def test_unknown_bench_driver_raises():
    spec = ScenarioSpec.from_dict({
        "name": "bad", "kind": "bench",
        "bench": {"driver": "nope"},
    })
    with pytest.raises(ValueError, match="nope"):
        run_spec(spec, quick=True)


# --- arrival processes -------------------------------------------------


def _arrival(**kw):
    return ArrivalSpec.from_dict(kw)


def test_fixed_arrivals():
    offs = arrival_offsets(_arrival(kind="fixed", stagger_s=2.0), 3,
                           seed=0, key="k")
    assert offs == [0.0, 2.0, 4.0]


@pytest.mark.parametrize("kw", [
    dict(kind="uniform", window_s=30.0),
    dict(kind="poisson", rate_per_s=0.5),
    dict(kind="diurnal", window_s=60.0, peak=0.3, sharpness=2.0),
])
def test_random_arrivals_deterministic_sorted_nonnegative(kw):
    a = _arrival(**kw)
    offs = arrival_offsets(a, 8, seed=3, key="k")
    assert offs == arrival_offsets(a, 8, seed=3, key="k")
    assert offs != arrival_offsets(a, 8, seed=4, key="k")
    assert offs == sorted(offs)
    assert len(offs) == 8
    assert all(o >= 0.0 for o in offs)


def test_windowed_arrivals_stay_in_window():
    for kind in ("uniform", "diurnal"):
        a = _arrival(kind=kind, window_s=30.0)
        offs = arrival_offsets(a, 16, seed=1, key="k")
        assert all(0.0 <= o <= 30.0 for o in offs)
