"""Every archived BENCH report must satisfy the shared JSON schema."""

import json
from pathlib import Path

import pytest

from repro.scenario.schema import (
    SchemaError,
    assert_valid_report,
    bench_schema,
    validate_report,
)

RESULTS_DIR = Path(__file__).resolve().parents[2] / "results"

VALID_SCENARIO = {
    "schema_version": 1,
    "benchmark": "scenario",
    "scenario": "t",
    "kind": "fleet",
    "driver": "fleet",
    "quick": True,
    "seed": 0,
    "gates": [{"name": "integrity", "ok": True, "detail": "ok",
               "params": {}}],
    "ok": True,
    "metrics": {"lost_writes": 0},
}


def _bench_reports():
    if not RESULTS_DIR.is_dir():
        return []
    return sorted(RESULTS_DIR.glob("BENCH_*.json"))


@pytest.mark.parametrize("path", _bench_reports(),
                         ids=lambda p: p.name)
def test_archived_reports_validate(path):
    doc = json.loads(path.read_text())
    assert validate_report(doc) == [], f"{path.name} violates schema"


def test_results_dir_is_populated():
    # The parametrization above silently collects nothing if results/
    # moves; pin the expectation so that failure is loud.
    assert len(_bench_reports()) >= 1


def test_valid_scenario_envelope_accepted():
    assert_valid_report(VALID_SCENARIO)


@pytest.mark.parametrize("mutate, why", [
    (lambda d: d.pop("gates"), "missing gates"),
    (lambda d: d.pop("ok"), "missing ok"),
    (lambda d: d.update(extra=1), "unknown envelope key"),
    (lambda d: d.update(kind="party"), "bad kind"),
    (lambda d: d["gates"][0].pop("detail"), "gate missing detail"),
    (lambda d: d["gates"][0].update(verdict=1), "unknown gate key"),
    (lambda d: d.update(schema_version=2), "wrong schema version"),
])
def test_invalid_scenario_envelopes_rejected(mutate, why):
    import copy
    doc = copy.deepcopy(VALID_SCENARIO)
    mutate(doc)
    assert validate_report(doc) != [], why
    with pytest.raises(SchemaError):
        assert_valid_report(doc)


def test_legacy_reports_cannot_claim_scenario_shape():
    # A legacy-looking doc may not squat on benchmark="scenario" to
    # skip the strict envelope requirements.
    doc = {"benchmark": "scenario", "created_unix": 1}
    assert validate_report(doc) != []


def test_legacy_branch_accepts_bench_and_benchmark_keys():
    assert validate_report({"benchmark": "pr6", "anything": 1}) == []
    assert validate_report({"bench": "pr2", "samples": []}) == []
    # No discriminator at all -> rejected.
    assert validate_report({"samples": []}) != []


def test_schema_loads_and_is_cached():
    assert bench_schema() is bench_schema()
    assert bench_schema()["oneOf"]
