"""Loader: format dispatch, library resolution, load-time gate checks."""

import json

import pytest

from repro.scenario.loader import SCENARIO_DIR, list_specs, load_spec
from repro.scenario.spec import ScenarioSpec, SpecError

DOC = {
    "name": "loader-t",
    "kind": "bench",
    "bench": {"driver": "faultbench", "params": {"quick": True}},
}


def test_load_json_spec(tmp_path):
    path = tmp_path / "t.json"
    path.write_text(json.dumps(DOC))
    spec = load_spec(str(path))
    assert spec.name == "loader-t"
    assert spec.bench.driver == "faultbench"


def test_load_yaml_spec(tmp_path):
    yaml = pytest.importorskip("yaml")
    path = tmp_path / "t.yaml"
    path.write_text(yaml.safe_dump(DOC))
    assert load_spec(str(path)) == ScenarioSpec.from_dict(DOC)


def test_load_py_spec(tmp_path):
    path = tmp_path / "t.py"
    path.write_text(f"SPEC = {DOC!r}\n")
    assert load_spec(str(path)) == ScenarioSpec.from_dict(DOC)


def test_py_spec_without_binding_rejected(tmp_path):
    path = tmp_path / "t.py"
    path.write_text("NOT_SPEC = {}\n")
    with pytest.raises(SpecError, match="SPEC"):
        load_spec(str(path))


def test_unknown_name_lists_library(tmp_path):
    with pytest.raises(SpecError, match="no scenario"):
        load_spec("no-such-scenario-anywhere")


def test_unknown_gate_fails_at_load_time(tmp_path):
    doc = {**DOC, "gates": ["not_a_gate"]}
    path = tmp_path / "t.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(SpecError, match="not_a_gate"):
        load_spec(str(path))


def test_gate_missing_required_param_fails_at_load_time(tmp_path):
    doc = {**DOC, "gates": [{"name": "makespan_ceiling",
                             "params": {"phase": "x"}}]}
    path = tmp_path / "t.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(SpecError, match="max_s"):
        load_spec(str(path))


def test_quick_profile_gates_validated_too(tmp_path):
    doc = {**DOC, "quick": {"gates": ["bogus_gate"]}}
    path = tmp_path / "t.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(SpecError, match="bogus_gate"):
        load_spec(str(path))


def test_library_specs_all_load_and_round_trip():
    specs = list_specs()
    names = [s.name for s in specs]
    # The CI matrix cells must all exist in the library.
    for expected in ("perf_smoke", "fleet_smoke", "fault_smoke",
                     "cascade_smoke", "coop_smoke", "chaos_smoke",
                     "farm_smoke", "fleet_rollout"):
        assert expected in names
    assert names == sorted(names)
    for spec in specs:
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        # quick profile of every library spec must itself be valid
        spec.quicked()


def test_bare_name_resolution_matches_path():
    path = SCENARIO_DIR / "fault_smoke.yaml"
    assert load_spec("fault_smoke") == load_spec(str(path))
