"""Eviction-policy strategy tests: deterministic victim-selection
behaviour per policy, plus hypothesis properties (capacity invariants
for every policy; LRU reproduces the historical inline victim choices
bit-identically against a reference model)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blockcache import ProxyBlockCache
from repro.core.config import ProxyCacheConfig
from repro.core.eviction import POLICIES, LruInSet, make_policy
from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem

BS = 8192
FH = FileHandle("fs", 1)


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


def one_set_cache(env, eviction, associativity=2):
    """A cache with exactly one set, so every block contends."""
    config = ProxyCacheConfig(capacity_bytes=associativity * BS, n_banks=1,
                              associativity=associativity, block_size=BS,
                              eviction=eviction)
    return ProxyBlockCache(env, LocalFileSystem(env), config)


def insert(env, cache, block):
    run(env, cache.insert((FH, block), bytes([block % 251]) * BS))


def lookup(env, cache, block):
    return run(env, cache.lookup((FH, block)))


def cached(cache):
    return {block for (_, block) in cache._where}


# -- policy registry -------------------------------------------------------

def test_policy_registry_and_validation():
    assert sorted(POLICIES) == ["2q", "lfu", "lru"]
    assert isinstance(make_policy("lru"), LruInSet)
    with pytest.raises(ValueError):
        make_policy("clock")
    with pytest.raises(ValueError):
        ProxyCacheConfig(eviction="clock")


def test_config_carries_policy_into_the_cache():
    env = Environment()
    for name in POLICIES:
        assert one_set_cache(env, name).policy.name == name


# -- deterministic victim selection ----------------------------------------

def test_lru_evicts_least_recently_touched():
    env = Environment()
    cache = one_set_cache(env, "lru")
    insert(env, cache, 0)
    insert(env, cache, 1)
    assert lookup(env, cache, 0) is not None   # touch 0; 1 is now LRU
    insert(env, cache, 2)
    assert cached(cache) == {0, 2}


def test_lfu_retains_the_frequently_hit_block():
    env = Environment()
    cache = one_set_cache(env, "lfu")
    insert(env, cache, 0)
    for _ in range(3):
        assert lookup(env, cache, 0) is not None
    insert(env, cache, 1)
    insert(env, cache, 2)                       # victim: 1 (count 1) not 0
    assert cached(cache) == {0, 2}
    # Under pure LRU the same sequence evicts block 0 (oldest touch
    # is irrelevant to LFU but decisive for LRU with 1 touched last).
    env = Environment()
    cache = one_set_cache(env, "lru")
    insert(env, cache, 0)
    for _ in range(3):
        lookup(env, cache, 0)
    insert(env, cache, 1)
    insert(env, cache, 2)                       # victim: 0 (LRU) not 1
    assert cached(cache) == {1, 2}


def test_2q_scan_does_not_displace_the_protected_set():
    env = Environment()
    cache = one_set_cache(env, "2q", associativity=4)
    insert(env, cache, 0)
    insert(env, cache, 1)
    assert lookup(env, cache, 0) is not None    # promote 0 and 1
    assert lookup(env, cache, 1) is not None
    insert(env, cache, 2)                       # one-shot scan blocks,
    insert(env, cache, 3)                       # probationary
    insert(env, cache, 4)                       # victim: probationary 2
    assert {0, 1} <= cached(cache)
    assert 2 not in cached(cache)


def test_2q_falls_back_to_lru_when_all_protected():
    env = Environment()
    cache = one_set_cache(env, "2q")
    insert(env, cache, 0)
    insert(env, cache, 1)
    lookup(env, cache, 0)
    lookup(env, cache, 1)                       # both protected
    insert(env, cache, 2)                       # LRU among protected: 0
    assert cached(cache) == {1, 2}


# -- hypothesis properties -------------------------------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup"]),
              st.integers(min_value=0, max_value=3),    # file index
              st.integers(min_value=0, max_value=40)),  # block index
    min_size=1, max_size=60)


@pytest.mark.parametrize("eviction", sorted(POLICIES))
@given(ops=ops)
@settings(max_examples=25, deadline=None)
def test_capacity_invariants_hold_for_every_policy(eviction, ops):
    """No policy overfills the cache or a set, loses track of a frame,
    or returns foreign data."""
    env = Environment()
    config = ProxyCacheConfig(capacity_bytes=16 * BS, n_banks=2,
                              associativity=2, block_size=BS,
                              eviction=eviction)
    cache = ProxyBlockCache(env, LocalFileSystem(env), config)
    model = {}
    for op, file_index, block in ops:
        key = (FileHandle("fs", file_index), block)
        if op == "insert":
            data = bytes([(file_index * 41 + block) % 251]) * BS
            run(env, cache.insert(key, data))
            model[key] = data
        else:
            hit = run(env, cache.lookup(key))
            if hit is not None:
                assert hit.data == model[key]
    assert cache.cached_blocks <= config.total_frames
    per_set = {}
    for key, (bank, frame) in cache._where.items():
        assert cache._banks[bank].keys[frame] == key
        per_set[bank, frame // config.associativity] = \
            per_set.get((bank, frame // config.associativity), 0) + 1
    assert all(n <= config.associativity for n in per_set.values())


@given(ops=ops)
@settings(max_examples=40, deadline=None)
def test_lru_victims_match_the_reference_model(ops):
    """The extracted LruInSet policy reproduces the historical inline
    ``min(range(base, base + a), key=lru.__getitem__)`` victim choices
    bit-identically: a per-set recency-ordered reference model predicts
    every eviction."""
    env = Environment()
    a = 2
    config = ProxyCacheConfig(capacity_bytes=8 * BS, n_banks=2,
                              associativity=a, block_size=BS,
                              eviction="lru")
    cache = ProxyBlockCache(env, LocalFileSystem(env), config)
    sets = {}        # (bank, set) -> [keys, least-recent first]
    for op, file_index, block in ops:
        key = (FileHandle("fs", file_index), block)
        if op == "lookup":
            if run(env, cache.lookup(key)) is not None:
                for members in sets.values():
                    if key in members:
                        members.remove(key)
                        members.append(key)
            continue
        present = key in cache._where
        run(env, cache.insert(key, bytes([block % 251]) * BS))
        bank, frame = cache._where[key]
        set_id = (bank, frame // a)
        members = sets.setdefault(set_id, [])
        if present:
            members.remove(key)
        elif len(members) == a:
            victim = members.pop(0)     # model's predicted LRU victim
            assert victim not in cache._where
        members.append(key)
        # Everything the model still holds must still be cached.
        assert all(k in cache._where for k in members)
