"""Block-path tests for the second-level (LAN) caching proxy, and the
equivalence of ``build_cascade`` with the sessions it generalizes."""

import pytest

from repro.core.session import (
    GvfsSession,
    Scenario,
    SecondLevelCache,
    ServerEndpoint,
    build_cascade,
)
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.vm.image import VmConfig, VmImage
from tests.core.harness import SMALL_CACHE


def make_rig(n_compute=2):
    testbed = Testbed(Environment(), n_compute=n_compute)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2, disk_gb=0.01,
                                    seed=47))
    second = SecondLevelCache(testbed, endpoint, SMALL_CACHE)
    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i,
                                  cache_config=SMALL_CACHE, via=second)
                for i in range(n_compute)]
    return testbed, endpoint, image, second, sessions


def run(testbed, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    testbed.env.process(wrapper(testbed.env))
    testbed.env.run()
    return box


def read_block(session, block):
    def gen(env):
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        data = yield env.process(f.read(block * 8192, 8192))
        return data
    return gen


def test_lan_cache_fills_on_first_compute_miss():
    testbed, endpoint, image, second, sessions = make_rig()
    run(testbed, read_block(sessions[0], 0)(testbed.env))
    assert second.block_cache.cached_blocks >= 1
    assert sessions[0].client_proxy.block_cache.cached_blocks >= 1


def test_second_compute_node_hits_lan_not_wan():
    testbed, endpoint, image, second, sessions = make_rig()
    run(testbed, read_block(sessions[0], 0)(testbed.env))
    server_calls_before = endpoint.server.calls
    box = run(testbed, read_block(sessions[1], 0)(testbed.env))
    # compute1's miss was served by the LAN proxy's block cache: only
    # its own LOOKUP/GETATTR traffic reached the WAN server.
    assert second.proxy.stats.block_cache_hits >= 1
    reads_at_server = endpoint.server.calls - server_calls_before
    assert box["value"] == image.disk_inode.data.read(0, 8192)
    # No READ went to the origin for that block.
    assert second.proxy.upstream.stats.by_proc.get("READ", 0) == 1


def test_lan_hit_faster_than_wan_miss():
    testbed, endpoint, image, second, sessions = make_rig()
    cold = run(testbed, read_block(sessions[0], 3)(testbed.env))

    # Warm the LAN cache with a second block too.
    run(testbed, read_block(sessions[0], 5)(testbed.env))

    def timed(env):
        # The open-time LOOKUP walk and the proxy's one-time metadata
        # probe still cross the WAN; time a steady-state data read.
        f = yield env.process(sessions[1].mount.open(
            "/images/golden/disk.vmdk"))
        yield env.process(f.read(3 * 8192, 8192))  # pays the .gvfs probe
        t0 = env.now
        yield env.process(f.read(5 * 8192, 8192))
        return env.now - t0

    warm = run(testbed, timed(testbed.env))
    # The steady-state read pays LAN round trips only (~1 ms vs ~39 ms).
    assert warm["value"] < 0.01


def test_data_integrity_through_three_proxies():
    testbed, endpoint, image, second, sessions = make_rig()
    golden = image.disk_inode.data
    for block in (0, 5, 11):
        box = run(testbed, read_block(sessions[1], block)(testbed.env))
        assert box["value"] == golden.read(block * 8192, 8192)


# -- build_cascade is pure generalization: bit-identical equivalence --------

def _read_sequence(via_factory, n_compute=2):
    """Run a fixed cross-session read sequence against whatever
    ``via_factory(testbed, endpoint)`` interposes; return per-read
    (simulated time, bytes) pairs plus every proxy's stats snapshot."""
    testbed = Testbed(Environment(), n_compute=n_compute)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2, disk_gb=0.01,
                                    seed=47))
    via, levels = via_factory(testbed, endpoint)
    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i,
                                  cache_config=SMALL_CACHE, via=via)
                for i in range(n_compute)]
    trace = []
    for session_index, block in [(0, 0), (1, 0), (0, 3), (1, 5), (1, 3)]:
        box = run(testbed, read_block(sessions[session_index],
                                      block)(testbed.env))
        trace.append((testbed.env.now, box["value"]))
    snapshots = ([level.proxy.stats_snapshot() for level in levels]
                 + [s.client_proxy.stats_snapshot() for s in sessions])
    return trace, snapshots


def test_depth2_cascade_matches_second_level_cache_goldens():
    """A depth-2 ``build_cascade`` must stay byte- and simulated-time-
    identical to the literal ``SecondLevelCache`` wiring."""
    def classic(testbed, endpoint):
        level = SecondLevelCache(testbed, endpoint, SMALL_CACHE)
        return level, [level]

    def cascaded(testbed, endpoint):
        cascade = build_cascade(testbed, endpoint, [SMALL_CACHE])
        return cascade, cascade.levels

    ref_trace, ref_snaps = _read_sequence(classic)
    new_trace, new_snaps = _read_sequence(cascaded)
    assert new_trace == ref_trace
    assert new_snaps == ref_snaps


def test_depth1_cascade_is_a_plain_caching_proxy():
    """``build_cascade(levels=[])`` interposes nothing: sessions built
    through it behave identically to plain WAN+C sessions."""
    def plain(testbed, endpoint):
        return None, []

    def empty_cascade(testbed, endpoint):
        cascade = build_cascade(testbed, endpoint, [])
        assert cascade.depth == 1 and cascade.top is None
        return cascade, cascade.levels

    ref_trace, ref_snaps = _read_sequence(plain)
    new_trace, new_snaps = _read_sequence(empty_cascade)
    assert new_trace == ref_trace
    assert new_snaps == ref_snaps
