"""Unit tests for the proxy block cache (banks/frames/sets, §3.2.1)."""

import pytest

from repro.core.blockcache import ProxyBlockCache
from repro.core.config import CachePolicy, ProxyCacheConfig
from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem


def make_cache(**kwargs):
    env = Environment()
    storage = LocalFileSystem(env, name="proxyhost")
    defaults = dict(capacity_bytes=64 * 8192, n_banks=4, associativity=2,
                    block_size=8192)
    defaults.update(kwargs)
    config = ProxyCacheConfig(**defaults)
    return env, ProxyBlockCache(env, storage, config)


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


FH = FileHandle("img", 42)
FH2 = FileHandle("img", 43)


def test_miss_then_hit():
    env, cache = make_cache()
    assert run(env, cache.lookup((FH, 0))) is None
    run(env, cache.insert((FH, 0), b"block-zero"))
    hit = run(env, cache.lookup((FH, 0)))
    assert hit is not None
    assert hit.data == b"block-zero"
    assert not hit.dirty
    assert cache.hits == 1 and cache.misses == 1


def test_insert_replaces_same_key():
    env, cache = make_cache()
    run(env, cache.insert((FH, 5), b"v1"))
    run(env, cache.insert((FH, 5), b"v2"))
    assert run(env, cache.lookup((FH, 5))).data == b"v2"
    assert cache.cached_blocks == 1


def test_distinct_files_do_not_collide_logically():
    env, cache = make_cache()
    run(env, cache.insert((FH, 0), b"A"))
    run(env, cache.insert((FH2, 0), b"B"))
    assert run(env, cache.lookup((FH, 0))).data == b"A"
    assert run(env, cache.lookup((FH2, 0))).data == b"B"


def test_consecutive_blocks_map_to_consecutive_sets():
    env, cache = make_cache()
    sets = cache.config.sets_per_bank
    bank0, set0 = cache._index((FH, 0))
    bank1, set1 = cache._index((FH, 1))
    assert bank0 == bank1  # same group -> same bank
    assert set1 == (set0 + 1) % sets or set1 == set0 + 1


def test_set_eviction_is_lru():
    env, cache = make_cache(capacity_bytes=4 * 2 * 8192, n_banks=4,
                            associativity=2)
    # sets_per_bank == 1: all blocks of one group share a 2-way set.
    assert cache.config.sets_per_bank == 1
    keys = [(FH, 0), (FH2, 0), (FileHandle("img", 44), 0)]
    # Find three keys that land in the same bank set.
    same = [k for k in [(FileHandle("img", i), 0) for i in range(100)]
            if cache._index(k) == cache._index((FileHandle("img", 0), 0))]
    a, b, c = same[:3]
    run(env, cache.insert(a, b"a"))
    run(env, cache.insert(b, b"b"))
    run(env, cache.lookup(a))          # touch a: b becomes LRU
    run(env, cache.insert(c, b"c"))    # evicts b
    assert run(env, cache.lookup(a)) is not None
    assert run(env, cache.lookup(b)) is None
    assert run(env, cache.lookup(c)) is not None
    assert cache.evictions == 1


def test_dirty_eviction_returns_victim():
    env, cache = make_cache(capacity_bytes=4 * 2 * 8192, n_banks=4,
                            associativity=2)
    same = [k for k in [(FileHandle("img", i), 0) for i in range(100)]
            if cache._index(k) == cache._index((FileHandle("img", 0), 0))]
    a, b, c = same[:3]
    run(env, cache.insert(a, b"dirty-a", dirty=True))
    run(env, cache.insert(b, b"clean-b"))
    victim = run(env, cache.insert(c, b"c"))
    assert victim is not None
    assert victim.key == a
    assert victim.data == b"dirty-a"
    assert victim.dirty


def test_clean_eviction_returns_none():
    env, cache = make_cache(capacity_bytes=4 * 2 * 8192, n_banks=4,
                            associativity=2)
    same = [k for k in [(FileHandle("img", i), 0) for i in range(100)]
            if cache._index(k) == cache._index((FileHandle("img", 0), 0))]
    a, b, c = same[:3]
    run(env, cache.insert(a, b"a"))
    run(env, cache.insert(b, b"b"))
    assert run(env, cache.insert(c, b"c")) is None


def test_dirty_tracking_and_mark_clean():
    env, cache = make_cache()
    run(env, cache.insert((FH, 1), b"d1", dirty=True))
    run(env, cache.insert((FH, 2), b"d2", dirty=True))
    run(env, cache.insert((FH2, 1), b"d3", dirty=True))
    run(env, cache.insert((FH, 3), b"clean"))
    assert cache.dirty_blocks(FH) == [(FH, 1), (FH, 2)]
    assert len(cache.dirty_blocks()) == 3
    cache.mark_clean((FH, 1))
    assert cache.dirty_blocks(FH) == [(FH, 2)]


def test_read_for_writeback():
    env, cache = make_cache()
    run(env, cache.insert((FH, 9), b"payload", dirty=True))
    data = run(env, cache.read_for_writeback((FH, 9)))
    assert data == b"payload"
    with pytest.raises(KeyError):
        run(env, cache.read_for_writeback((FH, 10)))


def test_short_block_length_preserved():
    env, cache = make_cache()
    run(env, cache.insert((FH, 0), b"xy"))
    assert run(env, cache.lookup((FH, 0))).data == b"xy"


def test_oversized_block_rejected():
    env, cache = make_cache()
    with pytest.raises(ValueError):
        run(env, cache.insert((FH, 0), b"z" * 8193))


def test_read_only_cache_rejects_dirty():
    env = Environment()
    storage = LocalFileSystem(env)
    cache = ProxyBlockCache(env, storage, ProxyCacheConfig(
        capacity_bytes=64 * 8192, n_banks=4, associativity=2), read_only=True)
    run(env, cache.insert((FH, 0), b"ro"))  # clean insert fine
    with pytest.raises(PermissionError):
        run(env, cache.insert((FH, 1), b"w", dirty=True))


def test_flush_tags_empties_cache():
    env, cache = make_cache()
    run(env, cache.insert((FH, 0), b"a"))
    run(env, cache.insert((FH, 1), b"b"))
    cache.flush_tags()
    assert cache.cached_blocks == 0
    assert run(env, cache.lookup((FH, 0))) is None


def test_banks_created_on_demand():
    env, cache = make_cache()
    assert cache.banks_created == 0
    run(env, cache.insert((FH, 0), b"x"))
    assert cache.banks_created == 1


def test_bank_files_exist_on_proxy_disk():
    env, cache = make_cache()
    run(env, cache.insert((FH, 0), b"on-disk"))
    bank_files = cache.storage.fs.readdir("/proxycache")
    assert len(bank_files) == 1
    assert bank_files[0].startswith("bank")


def test_paper_default_geometry():
    cfg = ProxyCacheConfig()
    assert cfg.n_banks == 512
    assert cfg.associativity == 16
    assert cfg.capacity_bytes == 8 * 1024 ** 3
    assert cfg.total_frames == 1024 ** 3 // 1024  # 8 GB / 8 KB
    assert cfg.frames_per_bank * cfg.n_banks == cfg.total_frames


def test_config_validation():
    with pytest.raises(ValueError):
        ProxyCacheConfig(block_size=0)
    with pytest.raises(ValueError):
        ProxyCacheConfig(block_size=64 * 1024)  # above protocol limit
    with pytest.raises(ValueError):
        ProxyCacheConfig(n_banks=0)
    with pytest.raises(ValueError):
        ProxyCacheConfig(capacity_bytes=8192, n_banks=512, associativity=16)


def test_hit_timing_charged_via_storage():
    env, cache = make_cache()
    run(env, cache.insert((FH, 0), b"k" * 8192))
    cache.storage.drop_caches()  # frame cold on proxy disk

    def timed(env):
        t0 = env.now
        yield env.process(cache.lookup((FH, 0)))
        return env.now - t0

    elapsed = run(env, timed(env))
    assert elapsed > 0  # disk access charged


def count_bank_writes(cache, calls):
    orig = cache.storage.timed_write_inode

    def counting(inode, data, offset=0, sync=False):
        calls.append((offset, len(data)))
        return orig(inode, data, offset, sync)

    cache.storage.timed_write_inode = counting


def count_bank_reads(cache, calls):
    orig = cache.storage.timed_read_inode

    def counting(inode, offset, count):
        calls.append((offset, count))
        return orig(inode, offset, count)

    cache.storage.timed_read_inode = counting


def test_insert_many_merges_adjacent_frames_into_one_bank_write():
    env, cache = make_cache()
    calls = []
    count_bank_writes(cache, calls)
    items = [((FH, i), bytes([i]) * 8192) for i in range(8)]
    victims = run(env, cache.insert_many(items))
    assert victims == []
    # Blocks 0..7 fill way 0 of eight consecutive sets in one bank:
    # physically contiguous, so the whole window is one 64 KB write.
    assert calls == [(0, 8 * 8192)]
    for i in range(8):
        assert run(env, cache.lookup((FH, i))).data == bytes([i]) * 8192


def test_insert_many_does_not_merge_past_short_blocks():
    env, cache = make_cache()
    calls = []
    count_bank_writes(cache, calls)
    items = [((FH, 0), b"a" * 8192), ((FH, 1), b"b" * 100),
             ((FH, 2), b"c" * 8192)]
    run(env, cache.insert_many(items))
    # The short middle block ends its span; merging past it would
    # write stale padding over block 2's frame.
    assert len(calls) == 2


def test_read_many_merges_contiguous_frames_and_preserves_order():
    env, cache = make_cache()
    items = [((FH, i), bytes([65 + i]) * 8192) for i in range(8)]
    run(env, cache.insert_many(items, dirty=True))
    calls = []
    count_bank_reads(cache, calls)
    datas = run(env, cache.read_many([key for key, _ in items]))
    assert calls == [(0, 8 * 8192)]
    assert datas == [data for _, data in items]
    assert cache.writebacks == 8
    with pytest.raises(KeyError):
        run(env, cache.read_many([(FH, 99)]))


def test_dirty_runs_group_adjacent_blocks_and_cap():
    env, cache = make_cache()
    for i in (0, 1, 2, 4, 5):
        run(env, cache.insert((FH, i), bytes([i]) * 8192, dirty=True))
    run(env, cache.insert((FH2, 0), b"x" * 8192, dirty=True))
    runs = cache.dirty_runs(max_run_bytes=2 * 8192)
    assert runs == [[(FH, 0), (FH, 1)], [(FH, 2)],
                    [(FH, 4), (FH, 5)], [(FH2, 0)]]
    # A cap at or below the block size degenerates to one block per run.
    assert all(len(r) == 1 for r in cache.dirty_runs(0))


def test_dirty_runs_break_after_short_block():
    env, cache = make_cache()
    run(env, cache.insert((FH, 0), b"s" * 100, dirty=True))
    run(env, cache.insert((FH, 1), b"f" * 8192, dirty=True))
    assert cache.dirty_runs(64 * 1024) == [[(FH, 0)], [(FH, 1)]]


def test_dirty_runs_cap_of_exactly_one_block():
    env, cache = make_cache()
    for i in range(3):
        run(env, cache.insert((FH, i), bytes([i]) * 8192, dirty=True))
    # A cap equal to the block size leaves no room to merge a second
    # block: every run is exactly one block, same as cap 0.
    assert cache.dirty_runs(max_run_bytes=8192) == \
        [[(FH, 0)], [(FH, 1)], [(FH, 2)]]


def test_dirty_runs_short_block_mid_file_breaks_run():
    env, cache = make_cache()
    run(env, cache.insert((FH, 0), b"a" * 8192, dirty=True))
    run(env, cache.insert((FH, 1), b"b" * 100, dirty=True))
    run(env, cache.insert((FH, 2), b"c" * 8192, dirty=True))
    # The short block may end a run but nothing can merge after it.
    assert cache.dirty_runs(64 * 1024) == [[(FH, 0), (FH, 1)], [(FH, 2)]]


def test_dirty_runs_interleaved_files_sort_into_separate_runs():
    env, cache = make_cache()
    # Insertion order interleaves two files; runs must come out grouped
    # by file with each file's blocks in index order.
    for fh, i in [(FH, 0), (FH2, 0), (FH, 1), (FH2, 1)]:
        run(env, cache.insert((fh, i), b"y" * 8192, dirty=True))
    assert cache.dirty_runs(64 * 1024) == \
        [[(FH, 0), (FH, 1)], [(FH2, 0), (FH2, 1)]]


def test_read_many_stops_merged_span_at_short_frame():
    env, cache = make_cache()
    items = [((FH, 0), b"a" * 8192), ((FH, 1), b"b" * 100),
             ((FH, 2), b"c" * 8192)]
    run(env, cache.insert_many(items, dirty=True))
    calls = []
    count_bank_reads(cache, calls)
    datas = run(env, cache.read_many([key for key, _ in items]))
    assert datas == [data for _, data in items]
    # The short frame ends the first span (its payload trims the read);
    # block 2 is fetched separately — merging across the short frame
    # would read past its payload into the neighbouring frame's bytes.
    assert calls == [(0, 8192 + 100), (2 * 8192, 8192)]


def test_reset_stats_keeps_contents():
    env, cache = make_cache()
    run(env, cache.insert((FH, 0), b"a"))
    run(env, cache.lookup((FH, 0)))
    run(env, cache.lookup((FH, 1)))
    assert cache.hits and cache.misses and cache.insertions
    cache.reset_stats()
    assert (cache.hits, cache.misses, cache.insertions,
            cache.evictions, cache.writebacks) == (0, 0, 0, 0, 0)
    assert cache.cached_blocks == 1


def test_flush_tags_during_dirty_eviction_does_not_corrupt():
    env, cache = make_cache(capacity_bytes=4 * 2 * 8192, n_banks=4,
                            associativity=2)
    same = [k for k in [(FileHandle("img", i), 0) for i in range(100)]
            if cache._index(k) == cache._index((FileHandle("img", 0), 0))]
    a, b, c = same[:3]
    run(env, cache.insert(a, b"dirty-a" * 100, dirty=True))
    run(env, cache.insert(b, b"b"))
    cache.storage.drop_caches()   # victim read-back must hit the disk

    def racer(env):
        yield env.timeout(0)      # insert below is now parked on that read
        cache.flush_tags()

    env.process(racer(env))
    done = env.process(cache.insert(c, b"c" * 8192))
    env.run()
    assert done.value is None or done.value.key is None
    assert run(env, cache.lookup(c)).data == b"c" * 8192


def test_config_requires_cache_attachment():
    from repro.core.proxy import GvfsProxy
    from repro.core.config import ProxyConfig, ProxyCacheConfig
    env = Environment()
    with pytest.raises(ValueError):
        GvfsProxy(env, upstream=None,
                  config=ProxyConfig(cache=ProxyCacheConfig()))
