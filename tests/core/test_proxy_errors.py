"""Error-path tests for the GVFS proxy."""

import pytest

from repro.core.metadata import metadata_path_for
from repro.nfs.protocol import FileHandle, NfsProc, NfsRequest, NfsStatus
from tests.core.harness import Rig


def test_read_error_forwarded_unchanged():
    rig = Rig(metadata=False)

    def proc(env):
        bogus = FileHandle("images", 99999)
        reply = yield env.process(rig.session.client_proxy.handle(
            NfsRequest(NfsProc.READ, fh=bogus, offset=0, count=8192)))
        return reply.status

    value, _ = rig.run(proc(rig.env))
    assert value is NfsStatus.STALE


def test_corrupt_metadata_file_is_negative_cached():
    rig = Rig()
    meta_path = metadata_path_for("/images/golden/mem.vmss")
    fs = rig.endpoint.export.fs
    if fs.exists(meta_path):
        fs.unlink(meta_path)
    fs.create(meta_path)
    fs.write(meta_path, b"THIS IS NOT METADATA")

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        yield env.process(f.read(0, 8192))
        proxy = rig.session.client_proxy
        fh = next(iter(proxy._metadata))
        return proxy._metadata[fh], proxy.stats.zero_filtered_reads

    (cached_meta, filtered), _ = rig.run(proc(rig.env))
    assert cached_meta is None        # parse failure -> known-absent
    assert filtered == 0              # nothing wrongly filtered


def test_missing_metadata_probed_only_once():
    rig = Rig()  # no generate_metadata() call: lookups will miss

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/disk.vmdk"))
        yield env.process(f.read(0, 8192))
        lookups_after_first = rig.session.client_proxy.upstream.stats \
            .by_proc.get("LOOKUP", 0)
        rig.mount.drop_caches()
        f2 = yield env.process(rig.mount.open("/images/golden/disk.vmdk"))
        yield env.process(f2.read(8192, 8192))
        return (lookups_after_first,
                rig.session.client_proxy.upstream.stats.by_proc["LOOKUP"])

    (first, second), _ = rig.run(proc(rig.env))
    # Only the client's own re-resolution LOOKUPs appear; the proxy does
    # not re-probe for the .gvfs file on every read.
    assert second - first <= 4


def test_unsupported_request_kinds_pass_through():
    rig = Rig(metadata=False)

    def proc(env):
        names = yield env.process(rig.mount.readdir("/images/golden"))
        target_before = yield env.process(rig.mount.stat("/images/golden/vm.cfg"))
        return names, target_before.kind

    (names, kind), _ = rig.run(proc(rig.env))
    assert "mem.vmss" in names
    assert kind == "file"


def test_write_back_survives_interleaved_reads_and_writes():
    rig = Rig(metadata=False)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/log.bin"))
        for i in range(8):
            yield env.process(f.write(i * 8192, bytes([i]) * 8192))
            data = yield env.process(f.read(i * 8192, 8192))
            assert data == bytes([i]) * 8192
        yield env.process(f.close())
        yield env.process(rig.session.client_proxy.flush())
        return rig.endpoint.export.fs.read("/images/golden/log.bin")

    value, _ = rig.run(proc(rig.env))
    assert value == b"".join(bytes([i]) * 8192 for i in range(8))
