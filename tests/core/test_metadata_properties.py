"""Property-based tests for meta-data and profile encodings."""

from hypothesis import given, settings, strategies as st

from repro.core.metadata import FILE_CHANNEL_ACTIONS, FileMetadata, _rle
from repro.core.profiler import AccessProfile


indices = st.sets(st.integers(min_value=0, max_value=500), max_size=120)


@given(indices)
def test_rle_roundtrip(index_set):
    """Run-length encoding of sorted indices loses nothing."""
    runs = _rle(sorted(index_set))
    rebuilt = set()
    for start, length in runs:
        rebuilt.update(range(start, start + length))
    assert rebuilt == index_set
    # Runs are canonical: sorted, non-adjacent, positive lengths.
    for i in range(1, len(runs)):
        assert runs[i][0] > runs[i - 1][0] + runs[i - 1][1]
    assert all(length > 0 for _, length in runs)


@given(indices, st.integers(min_value=1, max_value=64))
def test_metadata_roundtrip_arbitrary_zero_sets(index_set, n_extra_blocks):
    file_blocks = (max(index_set, default=0) + n_extra_blocks)
    meta = FileMetadata(file_size=file_blocks * 8192, block_size=8192,
                        zero_blocks=frozenset(index_set),
                        actions=FILE_CHANNEL_ACTIONS)
    again = FileMetadata.from_bytes(meta.to_bytes())
    assert again == meta


@given(indices)
def test_covers_read_agrees_with_blockwise_check(index_set):
    meta = FileMetadata(file_size=501 * 8192, block_size=8192,
                        zero_blocks=frozenset(index_set))
    # Spot-check a handful of windows.
    for offset, count in [(0, 8192), (4096, 8192), (0, 501 * 8192),
                          (100 * 8192, 3 * 8192)]:
        first = offset // 8192
        last = (offset + count - 1) // 8192
        expected = all(i in index_set for i in range(first, last + 1))
        assert meta.covers_read(offset, count) == expected


profile_blocks = st.lists(
    st.tuples(st.sampled_from(["imgA", "imgB"]),
              st.integers(min_value=1, max_value=50),
              st.integers(min_value=0, max_value=10_000)),
    max_size=60, unique=True)


@given(profile_blocks)
def test_profile_roundtrip_preserves_order(blocks):
    profile = AccessProfile("app", tuple(blocks))
    again = AccessProfile.from_bytes(profile.to_bytes())
    assert again.blocks == tuple(blocks)  # order preserved exactly
    assert again.application == "app"
