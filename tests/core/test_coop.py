"""Cooperative peer caching and exclusive-cascade demotion.

Covers the behavioural guarantees the coopbench gates rely on: a clean
eviction victim demotes exactly one hop (and only once), dirty victims
always write back instead, demotion schedules are deterministic under
the topology-island shard runner, and a peer-cache hit returns bytes
identical to an origin read.
"""

import pytest

from repro.core.config import (
    ProxyCacheConfig,
    pipeline_overrides,
    set_pipeline_overrides,
)
from repro.core.session import (
    GvfsSession,
    Scenario,
    ServerEndpoint,
    build_cascade,
)
from repro.net.topology import Testbed
from repro.sim import Environment, run_islands
from repro.sim.chaos import attach_stack, layer_outage
from repro.sim.faults import FaultInjector, FaultKind
from repro.vm.image import VmConfig, VmImage
from tests.core.harness import SMALL_CACHE

BS = 8192

#: One set of two frames: every third distinct block forces an eviction.
TINY_CACHE = ProxyCacheConfig(capacity_bytes=2 * BS, n_banks=1,
                              associativity=2, block_size=BS)


@pytest.fixture
def no_readahead():
    """Disable proxy readahead so each test read is exactly one block."""
    saved = pipeline_overrides().get("readahead_depth")
    set_pipeline_overrides(readahead_depth=0)
    yield
    set_pipeline_overrides(readahead_depth=saved)


def make_demote_rig(seed=11):
    testbed = Testbed(Environment(), n_compute=1)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2, disk_gb=0.01,
                                    seed=seed))
    cascade = build_cascade(testbed, endpoint, [SMALL_CACHE])
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=TINY_CACHE,
                                metadata=False, via=cascade)
    return testbed, endpoint, image, cascade, session


def make_peer_rig(n_peers=2, seed=23):
    testbed = Testbed(Environment(), n_compute=n_peers)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2, disk_gb=0.01,
                                    seed=seed))
    directory = testbed.peer_directory()
    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i,
                                  cache_config=SMALL_CACHE, metadata=False,
                                  peer_directory=directory)
                for i in range(n_peers)]
    return testbed, endpoint, image, directory, sessions


def run(testbed, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    testbed.env.process(wrapper(testbed.env))
    testbed.env.run()
    return box


def read_block(session, block):
    def gen(env):
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        data = yield env.process(f.read(block * BS, BS))
        return f.fh, data
    return gen


def read_blocks(session, blocks):
    def gen(env):
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        out = []
        for block in blocks:
            out.append((yield env.process(f.read(block * BS, BS))))
        return f.fh, out
    return gen


def level_restart(testbed, level):
    def gen(env):
        yield env.process(level.proxy.quiesce())
        level.proxy.invalidate_caches()
    run(testbed, gen(testbed.env))


# -- exclusive demotion -----------------------------------------------------

def test_clean_eviction_demotes_exactly_once(no_readahead):
    """A clean victim travels exactly one hop up — the next level
    absorbs it without re-reading origin, and serves it back later."""
    testbed, endpoint, image, cascade, session = make_demote_rig()
    client = session.client_proxy.layer("block-cache")
    assert client.arm_demotion()
    l2 = cascade.levels[0]
    l2_layer = l2.proxy.layer("block-cache")

    box = run(testbed, read_blocks(session, [0, 1])(testbed.env))
    fh = box["value"][0]
    # Empty the next level so the demote is the only way block 0's
    # bytes can get back there.
    level_restart(testbed, l2)
    assert (fh, 0) not in l2.block_cache

    run(testbed, read_blocks(session, [2])(testbed.env))
    assert client.stats.demotions_out == 1       # exactly one DEMOTE out
    assert l2_layer.stats.demotions_in == 1      # absorbed exactly once
    assert (fh, 0) in l2.block_cache             # the key landed in L2

    # The demoted copy now serves a refetch with no origin READ.  Drop
    # only the kernel client's page cache so the demand read reaches
    # the proxy tiers.
    session.mount.drop_caches()
    origin_reads = l2.proxy.upstream.stats.by_proc.get("READ", 0)
    hits_before = l2.proxy.stats.block_cache_hits
    run(testbed, read_blocks(session, [0])(testbed.env))
    assert l2.proxy.stats.block_cache_hits == hits_before + 1
    assert l2.proxy.upstream.stats.by_proc.get("READ", 0) == origin_reads


def test_resident_upstream_copy_drops_duplicate_demote(no_readahead):
    """Inclusive fill already placed the victim upstream: the demote is
    refused (never double-inserted), counted as a drop."""
    testbed, endpoint, image, cascade, session = make_demote_rig()
    client = session.client_proxy.layer("block-cache")
    assert client.arm_demotion()
    l2_layer = cascade.levels[0].proxy.layer("block-cache")

    run(testbed, read_blocks(session, [0, 1, 2])(testbed.env))
    assert client.stats.demotions_out == 1
    assert l2_layer.stats.demotions_in == 0
    assert l2_layer.stats.demotion_drops == 1


def test_dirty_victim_writes_back_never_demotes(no_readahead):
    testbed, endpoint, image, cascade, session = make_demote_rig()
    client = session.client_proxy.layer("block-cache")
    assert client.arm_demotion()

    payload = b"D" * BS

    def dirty_then_evict(env):
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        yield env.process(f.write_sync(0, payload))    # block 0 dirty
        yield env.process(f.read(1 * BS, BS))
        yield env.process(f.read(2 * BS, BS))          # evicts dirty block 0
        return f.fh

    box = run(testbed, dirty_then_evict(testbed.env))
    assert client.stats.demotions_out == 0
    assert client.stats.demotion_drops == 0

    # The modification survived the eviction (write-back, not a drop).
    def reread(env):
        yield env.process(session.cold_caches())
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        return (yield env.process(f.read(0, BS)))

    assert run(testbed, reread(testbed.env))["value"] == payload


def test_unarmed_client_never_emits_demotes(no_readahead):
    testbed, endpoint, image, cascade, session = make_demote_rig()
    client = session.client_proxy.layer("block-cache")
    run(testbed, read_blocks(session, [0, 1, 2, 3])(testbed.env))
    assert client.stats.demotions_out == 0
    assert cascade.levels[0].proxy.layer(
        "block-cache").stats.demotions_in == 0


def test_arm_demotion_refused_without_writable_upstream_cache():
    """The top session proxy talks straight to the origin: no DEMOTE."""
    testbed = Testbed(Environment(), n_compute=1)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    VmImage.create(endpoint.export.fs, "/images/golden",
                   VmConfig(name="golden", memory_mb=2, disk_gb=0.01, seed=3))
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=TINY_CACHE,
                                metadata=False)
    assert session.client_proxy.layer("block-cache").arm_demotion() is False


# -- shard-runner determinism -----------------------------------------------

def _demote_world(seed):
    """Module-level worker: one demotion scenario in a private world."""
    saved = pipeline_overrides().get("readahead_depth")
    set_pipeline_overrides(readahead_depth=0)
    try:
        testbed, endpoint, image, cascade, session = make_demote_rig(seed)
        client = session.client_proxy.layer("block-cache")
        client.arm_demotion()
        run(testbed, read_blocks(session, [0, 1, 2, 3])(testbed.env))
        session.mount.drop_caches()
        level_box = run(testbed, read_blocks(session, [0, 1])(testbed.env))
        l2_layer = cascade.levels[0].proxy.layer("block-cache")
        return (client.stats.demotions_out, l2_layer.stats.demotions_in,
                l2_layer.stats.demotion_drops, testbed.env.now,
                [d[:16] for d in level_box["value"][1]])
    finally:
        set_pipeline_overrides(readahead_depth=saved)


def test_demotion_deterministic_under_shard_runner():
    """The same demotion worlds produce bit-identical schedules whether
    run serially or forked across shard-runner workers."""
    seeds = [31, 37, 41]
    serial = run_islands(_demote_world, seeds, processes=1)
    sharded = run_islands(_demote_world, seeds, processes=3)
    assert sharded == serial
    for demotions_out, demotions_in, drops, now, _ in serial:
        assert demotions_out >= 1
        assert demotions_in + drops == demotions_out
        assert now > 0


# -- cooperative peer caching -----------------------------------------------

def test_peer_hit_is_byte_identical_to_origin(no_readahead):
    testbed, endpoint, image, directory, sessions = make_peer_rig()
    s0, s1 = sessions
    golden = image.disk_inode.data.read(2 * BS, BS)

    box0 = run(testbed, read_block(s0, 2)(testbed.env))
    assert box0["value"][1] == golden

    reads_before = s1.client_proxy.upstream.stats.by_proc.get("READ", 0)
    box1 = run(testbed, read_block(s1, 2)(testbed.env))
    assert box1["value"][1] == golden            # byte-identical to origin
    peer = s1.client_proxy.layer("peer-cache")
    assert peer.stats.peer_hits == 1
    assert peer.stats.peer_bytes == BS
    # The block never touched s1's WAN upstream.
    assert s1.client_proxy.upstream.stats.by_proc.get(
        "READ", 0) == reads_before
    assert directory.hits == 1


def test_stale_directory_answer_falls_through_to_origin(no_readahead):
    """A listed owner that no longer holds the block costs one wasted
    LAN round trip, then the read comes from origin — still correct."""
    testbed, endpoint, image, directory, sessions = make_peer_rig()
    s0, s1 = sessions
    box = run(testbed, read_block(s0, 0)(testbed.env))
    fh = box["value"][0]

    member0 = s0.client_proxy.layer("peer-cache").member
    directory._publish(member0, (fh, 5))         # s0 never cached block 5

    golden = image.disk_inode.data.read(5 * BS, BS)
    box1 = run(testbed, read_block(s1, 5)(testbed.env))
    assert box1["value"][1] == golden
    peer = s1.client_proxy.layer("peer-cache")
    assert peer.stats.peer_stale == 1
    assert peer.stats.peer_hits == 0
    assert directory.stale == 1


def test_eviction_retracts_published_blocks(no_readahead):
    """Directory state tracks the caches: an evicted frame is no longer
    advertised, so peers miss instead of chasing a stale owner."""
    testbed, endpoint, image, directory, sessions = make_peer_rig()
    s0, s1 = sessions

    def clear_s0(env):
        yield env.process(s0.cold_caches())

    run(testbed, read_block(s0, 0)(testbed.env))
    assert directory.stats_snapshot()["listed_blocks"] >= 1
    run(testbed, clear_s0(testbed.env))
    assert directory.stats_snapshot()["listed_blocks"] == 0

    box = run(testbed, read_block(s1, 0)(testbed.env))
    assert box["value"][1] == image.disk_inode.data.read(0, BS)
    assert s1.client_proxy.layer("peer-cache").stats.peer_hits == 0


def test_concurrent_misses_coalesce_on_the_designated_fetcher(no_readahead):
    """Two peers missing the same cold block at once: one WAN fetch,
    the second peer waits on the publication gate and borrows LAN-side."""
    testbed, endpoint, image, directory, sessions = make_peer_rig()
    s0, s1 = sessions
    golden = image.disk_inode.data.read(7 * BS, BS)
    box = {}

    def racer(env, session, tag):
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        box[tag] = yield env.process(f.read(7 * BS, BS))

    testbed.env.process(racer(testbed.env, s0, "a"))
    testbed.env.process(racer(testbed.env, s1, "b"))
    testbed.env.run()

    assert box["a"] == golden and box["b"] == golden
    snap = directory.stats_snapshot()
    assert snap["coalesced"] == 1
    total_upstream = sum(
        s.client_proxy.upstream.stats.by_proc.get("READ", 0)
        for s in sessions)
    assert total_upstream == 1                   # one WAN fetch, not two


# -- crash retirement and bounded demotion ----------------------------------

def test_proxy_crash_retires_peer_advertisements(no_readahead):
    """A crashed proxy's blocks must vanish from the directory at crash
    time — a later asker goes straight upstream, never chasing a stale
    advertisement into a dead cache."""
    testbed, endpoint, image, directory, sessions = make_peer_rig()
    s0, s1 = sessions
    box = run(testbed, read_block(s0, 4)(testbed.env))
    fh = box["value"][0]
    assert directory.locate((fh, 4)) is not None

    s0.client_proxy.crash()
    assert directory.retirements == 1
    assert directory.locate((fh, 4)) is None
    assert directory.stats_snapshot()["listed_blocks"] == 0

    golden = image.disk_inode.data.read(4 * BS, BS)
    box1 = run(testbed, read_block(s1, 4)(testbed.env))
    assert box1["value"][1] == golden
    peer = s1.client_proxy.layer("peer-cache")
    assert peer.stats.peer_hits == 0
    assert peer.stats.peer_stale == 0     # a crash is not a stale answer
    assert directory.stale == 0


def test_crashed_fetcher_releases_pending_waiters(no_readahead):
    """The designated WAN fetcher dies before publishing: its pending
    gate is released at retire time, so the waiter re-queries and falls
    through to its own upstream instead of stalling out the full
    PENDING_TIMEOUT on a publication that will never come."""
    testbed, endpoint, image, directory, sessions = make_peer_rig()
    s0, s1 = sessions
    member0 = s0.client_proxy.layer("peer-cache").member
    member1 = s1.client_proxy.layer("peer-cache").member
    box = run(testbed, read_block(s0, 0)(testbed.env))
    fh = box["value"][0]
    key = (fh, 9)
    result = {}

    def waiter(env):
        t0 = env.now
        result["reply"] = yield env.process(directory.borrow(member1, key))
        result["waited"] = env.now - t0

    def scenario(env):
        got = yield env.process(directory.borrow(member0, key))
        assert got == (None, False)       # s0 is the designated fetcher now
        env.process(waiter(env))
        yield env.timeout(0.01)
        s0.client_proxy.crash()           # ...and dies before publishing

    run(testbed, scenario(testbed.env))
    assert result["reply"] == (None, False)       # fall through upstream
    assert result["waited"] < directory.PENDING_TIMEOUT
    assert directory.retirements == 1
    assert directory.pending_timeouts == 0        # released, not timed out


def test_blackholed_demote_is_abandoned_at_the_deadline(no_readahead):
    """An in-flight DEMOTE swallowed by a dead next level is abandoned
    at the bounded send deadline — counted, and never wedging the
    eviction (or the read) that triggered it.  Replays identically."""
    def world():
        testbed, endpoint, image, cascade, session = make_demote_rig()
        client = session.client_proxy.layer("block-cache")
        assert client.arm_demotion()
        l2 = cascade.levels[0]
        injector = FaultInjector(testbed.env)
        attach_stack(injector, "l2", l2.proxy)
        injector.schedule(layer_outage(
            FaultKind.BLACKHOLE_PROC, "l2/block-cache",
            at=0.0, down_for=100.0, arg="DEMOTE"))
        golden = image.disk_inode.data.read(2 * BS, BS)

        def job(env):
            f = yield env.process(session.mount.open(
                "/images/golden/disk.vmdk"))
            for b in (0, 1):
                yield env.process(f.read(b * BS, BS))
            yield env.process(l2.proxy.quiesce())
            l2.proxy.invalidate_caches()
            start = env.now
            data = yield env.process(f.read(2 * BS, BS))  # evicts block 0
            return start, env.now, data

        box = run(testbed, job(testbed.env))
        start, end, data = box["value"]
        assert data == golden             # the triggering read completed
        assert end - start < client.DEMOTE_DEADLINE + 1.0
        assert client.stats.demotion_timeouts == 1
        assert client.stats.demotions_out == 0
        l2_layer = l2.proxy.layer("block-cache")
        assert l2_layer.stats.procs_blackholed == 1
        assert l2_layer.stats.demotions_in == 0
        return injector.timeline, end - start

    assert world() == world()             # fault replay is deterministic
