"""Adaptive cascade sizing: planner verdicts on hand-built snapshots,
geometry rounding, and live apply on a real cascade."""

import pytest

from repro.core.adaptive import (
    apply_cascade_sizing,
    format_sizing_report,
    plan_cascade_sizing,
    resized_config,
)
from repro.core.config import (
    ProxyCacheConfig,
    pipeline_overrides,
    set_pipeline_overrides,
)
from repro.core.session import (
    GvfsSession,
    Scenario,
    ServerEndpoint,
    build_cascade,
)
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.vm.image import VmConfig, VmImage
from tests.core.harness import SMALL_CACHE

BS = 8192


def counters(hits=0, misses=0, capacity=1024, evictions=0, resident=0,
             bypassed=0):
    return {"block_cache_hits": hits, "block_cache_misses": misses,
            "capacity_frames": capacity, "cache_evictions": evictions,
            "cached_blocks": resident, "bypassed": bypassed}


def snapshot(*levels):
    """Nest per-level block-cache counters the way a deep snapshot does."""
    node = {}
    root = node
    for i, c in enumerate(levels):
        node["block-cache"] = c
        if i + 1 < len(levels):
            up = {"name": f"level{i + 2}", "layers": {}}
            node["upstream"] = up
            node = up["layers"]
    return root


# -- planner verdicts -------------------------------------------------------

def test_low_traffic_level_is_kept():
    plans = plan_cascade_sizing(snapshot(counters(hits=3, misses=4)))
    assert [p.action for p in plans] == ["keep"]
    assert "no signal" in plans[0].reason


def test_useless_deep_level_is_bypassed_but_never_the_client():
    cold = counters(hits=0, misses=5000, capacity=1024, resident=1000,
                    evictions=4000)
    plans = plan_cascade_sizing(snapshot(cold, dict(cold)))
    assert plans[0].level == 1 and plans[0].action != "bypass"
    assert plans[1].level == 2 and plans[1].action == "bypass"


def test_already_bypassed_level_left_alone():
    c = counters(hits=0, misses=5000, bypassed=1)
    plans = plan_cascade_sizing(snapshot(counters(hits=500, misses=500), c))
    assert plans[1].action == "keep"
    assert plans[1].reason == "already bypassed"


def test_thrashing_level_grows_to_working_set():
    c = counters(hits=100, misses=2000, capacity=512, resident=512,
                 evictions=1488)
    plans = plan_cascade_sizing(snapshot(c))
    assert plans[0].action == "grow"
    assert plans[0].target_frames == int((512 + 1488) * 1.25)
    assert plans[0].is_resize


def test_grow_respects_max_frames_cap():
    c = counters(hits=100, misses=2000, capacity=512, resident=512,
                 evictions=1488)
    plans = plan_cascade_sizing(snapshot(c), max_frames=1024)
    assert plans[0].action == "grow"
    assert plans[0].target_frames == 1024
    capped = plan_cascade_sizing(snapshot(c), max_frames=512)
    assert capped[0].action == "keep"        # already at the cap


def test_oversized_level_shrinks_with_headroom():
    c = counters(hits=900, misses=100, capacity=4096, resident=100,
                 evictions=0)
    plans = plan_cascade_sizing(snapshot(c))
    assert plans[0].action == "shrink"
    assert plans[0].target_frames == int(100 * 1.25)


def test_healthy_level_pays_its_way():
    c = counters(hits=800, misses=200, capacity=1024, resident=900,
                 evictions=100)
    plans = plan_cascade_sizing(snapshot(c), shrink_slack=0.5)
    assert plans[0].action == "keep"
    assert plans[0].reason == "paying its way"


def test_cacheless_stack_skipped_but_walk_continues():
    deep = {"front": {}, "upstream": {"name": "forwarder", "layers": {
        "front": {}, "upstream": {"name": "l2", "layers":
                                  snapshot(counters(hits=500, misses=500))}}}}
    deep["block-cache"] = counters(hits=500, misses=500)
    plans = plan_cascade_sizing(deep)
    assert [p.level for p in plans] == [1, 2]


def test_report_formats_every_plan():
    c = counters(hits=100, misses=2000, capacity=512, resident=512,
                 evictions=1488)
    plans = plan_cascade_sizing(snapshot(c, counters()))
    text = format_sizing_report(plans)
    assert "L1" in text and "L2" in text and "grow" in text


# -- geometry ---------------------------------------------------------------

def test_resized_config_rounds_to_set_granule():
    config = ProxyCacheConfig(capacity_bytes=64 * BS, n_banks=4,
                              associativity=2, block_size=BS)
    grown = resized_config(config, 21)
    assert grown.n_banks == 4 and grown.associativity == 2
    assert grown.total_frames == 24          # next multiple of 4*2
    floor = resized_config(config, 1)
    assert floor.total_frames == 8           # never below one full set


# -- live apply -------------------------------------------------------------

def make_rig():
    testbed = Testbed(Environment(), n_compute=1)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2, disk_gb=0.01,
                                    seed=19))
    cascade = build_cascade(testbed, endpoint, [SMALL_CACHE])
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=SMALL_CACHE,
                                metadata=False, via=cascade)
    return testbed, image, cascade, session


def run(testbed, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    testbed.env.process(wrapper(testbed.env))
    testbed.env.run()
    return box


def read_blocks(session, blocks):
    def gen(env):
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        out = []
        for block in blocks:
            out.append((yield env.process(f.read(block * BS, BS))))
        return out
    return gen


def test_apply_bypasses_and_resizes_live_stack():
    saved = pipeline_overrides().get("readahead_depth")
    set_pipeline_overrides(readahead_depth=0)
    try:
        testbed, image, cascade, session = make_rig()
        run(testbed, read_blocks(session, list(range(8)))(testbed.env))

        client_layer = session.client_proxy.layer("block-cache")
        l2_layer = cascade.levels[0].proxy.layer("block-cache")
        old_frames = client_layer.block_cache.config.total_frames
        plans = plan_cascade_sizing(
            session.client_proxy.stats_snapshot(deep=True),
            min_traffic=1, min_hit_ratio=0.5, shrink_slack=0.0)
        # Every read missed both levels once: L2's ratio is 0, the
        # client is exempt from bypassing by construction.
        by_level = {p.level: p for p in plans}
        assert by_level[2].action == "bypass"
        assert by_level[1].action != "bypass"

        results = apply_cascade_sizing(session.client_proxy, plans)
        applied = {p.level: ok for p, ok in results}
        assert applied[2] is True
        assert l2_layer.bypassed

        # Reads still work (and skip the bypassed level entirely).
        before = l2_layer.stats_snapshot()["bypassed_requests"]
        session.mount.drop_caches()
        box = run(testbed, read_blocks(session, [0])(testbed.env))
        assert box["value"][0] == image.disk_inode.data.read(0, BS)
        assert client_layer.block_cache.config.total_frames == old_frames
    finally:
        set_pipeline_overrides(readahead_depth=saved)


def test_apply_grow_swaps_in_larger_cache():
    saved = pipeline_overrides().get("readahead_depth")
    set_pipeline_overrides(readahead_depth=0)
    try:
        testbed, image, cascade, session = make_rig()
        run(testbed, read_blocks(session, list(range(4)))(testbed.env))
        client_layer = session.client_proxy.layer("block-cache")
        old = client_layer.block_cache
        target = old.config.total_frames * 2
        plan = plan_cascade_sizing(
            session.client_proxy.stats_snapshot(deep=True))[0]
        grow = type(plan)(level=1, name="client", action="grow",
                          current_frames=old.config.total_frames,
                          target_frames=target, hit_ratio=0.0,
                          working_set=target, reason="test")
        results = apply_cascade_sizing(session.client_proxy, [grow])
        assert results[0][1] is True
        new = client_layer.block_cache
        assert new is not old
        assert new.config.total_frames >= target
        assert new.config.block_size == old.config.block_size

        # The fresh cache starts cold but refills correctly.
        session.mount.drop_caches()
        box = run(testbed, read_blocks(session, [1])(testbed.env))
        assert box["value"][0] == image.disk_inode.data.read(BS, BS)
    finally:
        set_pipeline_overrides(readahead_depth=saved)


def test_apply_refuses_resize_with_dirty_frames():
    testbed, image, cascade, session = make_rig()

    def dirty(env):
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        yield env.process(f.write_sync(0, b"q" * BS))

    run(testbed, dirty(testbed.env))
    client_layer = session.client_proxy.layer("block-cache")
    assert client_layer.block_cache.dirty_frames
    plan = plan_cascade_sizing(
        session.client_proxy.stats_snapshot(deep=True))[0]
    shrink = type(plan)(level=1, name="client", action="shrink",
                        current_frames=plan.current_frames,
                        target_frames=128, hit_ratio=0.0,
                        working_set=128, reason="test")
    results = apply_cascade_sizing(session.client_proxy, [shrink])
    assert results[0][1] is False            # flush first, never lose data


# -- periodic in-run sizing (engine-timer planner) --------------------------

class FakeStack:
    """Minimal stack: a deep-snapshot source the planner can read."""

    def __init__(self):
        self.snapshots = 0

    def stats_snapshot(self, deep=True):
        self.snapshots += 1
        return snapshot(counters(hits=3, misses=4))


def test_periodic_sizer_ticks_on_the_engine_clock():
    from repro.core.adaptive import PeriodicSizer

    env = Environment()
    stack = FakeStack()
    sizer = PeriodicSizer(env, stack, interval=2.0, rounds=3, apply=False)
    sizer.start()
    env.run()
    assert sizer.ticks == 3
    assert [e["at"] for e in sizer.history] == [2.0, 4.0, 6.0]
    assert stack.snapshots == 3
    for entry in sizer.history:
        assert entry["stacks"] == 1
        assert entry["actions"] == {"keep": 1}
        assert entry["applied"] == 0


def test_periodic_sizer_stop_lets_the_queue_drain():
    from repro.core.adaptive import PeriodicSizer

    env = Environment()
    sizer = PeriodicSizer(env, FakeStack(), interval=1.0, apply=False)
    sizer.start()

    def workload(env):
        yield env.timeout(3.5)
        sizer.stop()

    env.process(workload(env))
    env.run()                               # unbounded timer would hang here
    assert sizer.ticks == 3                 # no tick after stop()


def test_periodic_sizer_callable_source_sees_live_stacks():
    from repro.core.adaptive import PeriodicSizer

    env = Environment()
    live = []
    sizer = PeriodicSizer(env, lambda: live, interval=1.0, rounds=2,
                          apply=False)
    sizer.start()

    def workload(env):
        yield env.timeout(0.5)
        live.append(FakeStack())            # joins before the first tick
        yield env.timeout(1.0)
        live.append(FakeStack())            # joins before the second

    env.process(workload(env))
    env.run()
    assert [e["stacks"] for e in sizer.history] == [1, 2]


def test_periodic_sizer_rejects_bad_interval():
    from repro.core.adaptive import PeriodicSizer

    with pytest.raises(ValueError):
        PeriodicSizer(Environment(), FakeStack(), interval=0)


def test_session_manager_periodic_sizing_over_a_live_session():
    """The middleware wiring: a timer re-plans live sessions in-run."""
    from repro.middleware.imageserver import ImageRequirements
    from repro.middleware.sessions import VmSessionManager
    from repro.net.topology import make_paper_testbed

    testbed = make_paper_testbed(n_compute=1)
    env = testbed.env
    manager = VmSessionManager(testbed, account_pool_size=2)
    manager.catalog.register(
        "golden", VmConfig(name="golden", memory_mb=4, disk_gb=0.01,
                           persistent=False, seed=17),
        zero_fraction=0.5, generate_metadata=False)
    sizer = manager.start_adaptive_sizing(interval=5.0, apply=False)

    def workload(env):
        session = yield env.process(manager.create_session(
            "alice", ImageRequirements(min_memory_mb=4)))
        yield env.timeout(12.0)
        yield env.process(manager.end_session(session))
        sizer.stop()

    env.process(workload(env))
    env.run()
    assert sizer.ticks >= 2
    assert any(e["stacks"] >= 1 for e in sizer.history)
