"""End-to-end block integrity: the checksum registry, the verify layer
at the top of the client stack, and repair-by-refetch — including
corruption that travels sideways through peer borrowing or upward
through exclusive-cascade demotion."""

from types import SimpleNamespace

import pytest

from repro.core.config import (
    ProxyCacheConfig,
    pipeline_overrides,
    set_pipeline_overrides,
)
from repro.core.layers import ChecksumRegistry
from repro.core.session import (
    GvfsSession,
    Scenario,
    ServerEndpoint,
    build_cascade,
)
from repro.net.topology import Testbed
from repro.nfs.protocol import FileHandle, NfsProc, NfsRequest, NfsStatus
from repro.sim import Environment
from repro.vm.image import VmConfig, VmImage
from tests.core.harness import SMALL_CACHE

BS = 8192
PATH = "/images/golden/disk.vmdk"

#: One set of two frames, as in the coop tests: every third distinct
#: block forces an eviction (and, when armed, a demotion).
TINY_CACHE = ProxyCacheConfig(capacity_bytes=2 * BS, n_banks=1,
                              associativity=2, block_size=BS)


@pytest.fixture
def no_readahead():
    saved = pipeline_overrides().get("readahead_depth")
    set_pipeline_overrides(readahead_depth=0)
    yield
    set_pipeline_overrides(readahead_depth=saved)


def make_rig(levels=(), client_cache=SMALL_CACHE, n_compute=1,
             exclusive=False, peers=False, integrity=True):
    testbed = Testbed(Environment(), n_compute=n_compute)
    registry = ChecksumRegistry() if integrity else None
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server,
                              integrity=registry)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2,
                                    disk_gb=0.01, seed=7))
    cascade = (build_cascade(testbed, endpoint, list(levels))
               if levels else None)
    directory = testbed.peer_directory() if peers else None
    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i,
                                  cache_config=client_cache, metadata=False,
                                  via=cascade, peer_directory=directory,
                                  exclusive=exclusive, integrity=registry)
                for i in range(n_compute)]
    return SimpleNamespace(testbed=testbed, env=testbed.env,
                           registry=registry, endpoint=endpoint, image=image,
                           cascade=cascade, directory=directory,
                           sessions=sessions, session=sessions[0])


def fh_for(rig, path=PATH):
    return FileHandle("images", rig.endpoint.export.fs.lookup(path).fileid)


def run(rig, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    rig.env.process(wrapper(rig.env))
    rig.env.run()
    return box["value"], box["t"]


def read(proxy, fh, b):
    return proxy.handle(NfsRequest(NfsProc.READ, fh=fh,
                                   offset=b * BS, count=BS))


# --------------------------------------------------------------------------
# The registry
# --------------------------------------------------------------------------

def test_registry_records_matches_and_invalidates():
    reg = ChecksumRegistry()
    key = ("fh", 0)
    reg.record(key, b"abc")
    assert reg.matches(key, b"abc") is True
    assert reg.matches(key, b"abd") is False
    assert reg.matches(key, b"abcd") is False     # length is part of it
    assert reg.matches(("fh", 1), b"abc") is None  # unrecorded: unknowable
    assert len(reg) == 1 and reg.recorded == 1
    reg.invalidate(key)
    reg.invalidate(key)                           # idempotent
    assert reg.get(key) is None and reg.invalidated == 1


# --------------------------------------------------------------------------
# Clean path
# --------------------------------------------------------------------------

def test_clean_reads_verify_with_identical_timing(no_readahead):
    """Recording + verifying are synchronous crc calls: the same
    workload takes bit-identical simulated time with the layer absent,
    and every full-block read is covered."""
    def workload(integrity):
        rig = make_rig(integrity=integrity)
        proxy = rig.session.client_proxy
        fh = fh_for(rig)

        def job(env):
            for b in (0, 1, 2, 3):
                reply = yield from read(proxy, fh, b)
                assert reply.ok
        return rig, run(rig, job(rig.env))[1]

    rig, elapsed = workload(True)
    _, elapsed_bare = workload(False)
    assert elapsed == elapsed_bare                # bit-identical timing
    chk = rig.session.client_proxy.layer("checksum").stats
    assert chk.crcs_verified == 4
    assert chk.corruptions_caught == 0 and chk.verify_unrepaired == 0
    assert rig.endpoint.proxy.layer("checksum").stats.crcs_recorded == 4
    assert rig.registry.recorded == 4


# --------------------------------------------------------------------------
# Catch and repair
# --------------------------------------------------------------------------

def test_corrupt_client_frame_is_caught_and_repaired(no_readahead):
    rig = make_rig()
    proxy = rig.session.client_proxy
    fh = fh_for(rig)
    golden = rig.image.disk_inode.data.read(3 * BS, BS)

    def job(env):
        warm = yield from read(proxy, fh, 3)
        assert warm.ok and warm.data == golden
        proxy.layer("block-cache").inject_fault("corrupt-frame", 0)
        return (yield from read(proxy, fh, 3))

    reply, _ = run(rig, job(rig.env))
    assert reply.ok and reply.data == golden      # reader never sees garbage
    chk = proxy.layer("checksum").stats
    assert chk.corruptions_caught == 1
    assert chk.corruptions_repaired == 1
    assert chk.verify_unrepaired == 0
    assert proxy.layer("block-cache").stats.frames_corrupted == 1


def test_corruption_travelling_via_demotion_is_caught(no_readahead):
    """A corrupt frame demoted into the next level up is served back as
    a perfectly ordinary L2 hit — only the client-top verify instance
    stands between it and the reader."""
    rig = make_rig(levels=[TINY_CACHE], client_cache=TINY_CACHE,
                   exclusive=True)
    client = rig.session.client_proxy
    l2 = rig.cascade.levels[0].proxy
    fh = fh_for(rig)
    golden = rig.image.disk_inode.data.read(0, BS)

    def job(env):
        for b in (0, 1):                          # client and L2 hold {0, 1}
            assert (yield from read(client, fh, b)).ok
        client.layer("block-cache").block_cache.corrupt_frame((fh, 0))
        # Reading block 2 evicts block 0 from both two-frame caches —
        # L2 first (demand fill), then the client, whose armed demotion
        # hands the *garbled* copy up into the now-vacant L2 frame.
        assert (yield from read(client, fh, 2)).ok
        return (yield from read(client, fh, 0))

    reply, _ = run(rig, job(rig.env))
    assert reply.ok and reply.data == golden
    assert client.layer("block-cache").stats.demotions_out >= 1
    assert l2.layer("block-cache").stats.demotions_in >= 1
    chk = client.layer("checksum").stats
    assert chk.corruptions_caught == 1
    assert chk.corruptions_repaired == 1


def test_corruption_borrowed_from_a_peer_is_caught(no_readahead):
    """A neighbour's silently-garbled frame is still advertised (the
    tag is valid); the borrow succeeds, the verify instance catches it,
    and the repair suppresses peer borrowing so the refetch goes to the
    upstream of record instead of the same bad copy."""
    rig = make_rig(n_compute=2, peers=True)
    s0, s1 = rig.sessions
    fh = fh_for(rig)
    golden = rig.image.disk_inode.data.read(5 * BS, BS)

    def job(env):
        assert (yield from read(s1.client_proxy, fh, 5)).ok
        s1.client_proxy.layer("block-cache").block_cache.corrupt_frame(
            (fh, 5))
        return (yield from read(s0.client_proxy, fh, 5))

    reply, _ = run(rig, job(rig.env))
    assert reply.ok and reply.data == golden
    peer = s0.client_proxy.layer("peer-cache").stats
    assert peer.peer_hits == 1                    # the borrow did land
    assert peer.peer_suppressed >= 1              # refetch skipped the peer
    chk = s0.client_proxy.layer("checksum").stats
    assert chk.corruptions_caught == 1
    assert chk.corruptions_repaired == 1


def test_exhausted_repairs_return_clean_io_error(no_readahead):
    """When every refetch keeps producing bytes that mismatch the block
    of record (here: a dirty L2 frame that cannot be discarded), the
    client gets a clean IO error — never the garbled data."""
    rig = make_rig(levels=[SMALL_CACHE])
    client = rig.session.client_proxy
    l2 = rig.cascade.levels[0].proxy
    fh = fh_for(rig)

    def job(env):
        assert (yield from read(client, fh, 1)).ok
        client.layer("block-cache").discard_block((fh, 1))
        bc = l2.layer("block-cache").block_cache
        bank_index, frame_index = bc._where[(fh, 1)]
        bc._banks[bank_index].dirty[frame_index] = True   # only copy: kept
        bc.dirty_frames += 1
        assert bc.corrupt_frame((fh, 1))
        return (yield from read(client, fh, 1))

    reply, _ = run(rig, job(rig.env))
    assert reply.status is NfsStatus.IO
    assert not reply.data                          # no garbled bytes attached
    chk = client.layer("checksum").stats
    assert chk.corruptions_caught == 1
    assert chk.corruptions_repaired == 0
    assert chk.verify_unrepaired == 1


# --------------------------------------------------------------------------
# Writes
# --------------------------------------------------------------------------

def test_write_suspends_coverage_until_writeback_rerecords(no_readahead):
    """A local write diverges the cached block from the block of
    record: its checksum is invalidated at the client and re-recorded
    when the write-back reaches the origin-adjacent record instance."""
    rig = make_rig()
    proxy = rig.session.client_proxy
    fh = fh_for(rig)
    fresh = bytes([0x5A]) * BS

    def job(env):
        assert (yield from read(proxy, fh, 2)).ok
        assert rig.registry.get((fh, 2)) is not None
        reply = yield from proxy.handle(NfsRequest(
            NfsProc.WRITE, fh=fh, offset=2 * BS, data=fresh))
        assert reply.ok
        assert rig.registry.get((fh, 2)) is None  # coverage suspended
        yield env.process(proxy.flush())
        assert rig.registry.matches((fh, 2), fresh) is True
        return (yield from read(proxy, fh, 2))

    reply, _ = run(rig, job(rig.env))
    assert reply.ok and reply.data == fresh
    chk = proxy.layer("checksum").stats
    assert chk.corruptions_caught == 0 and chk.verify_unrepaired == 0
