"""Unit-level tests of the file channel's pipeline arithmetic."""

import pytest

from repro.core.channel import FileChannel, RemoteFileLocator
from repro.core.filecache import ProxyFileCache
from repro.net.compress import GZIP
from repro.net.link import Link, Route
from repro.net.ssh import ScpTransfer
from repro.net.topology import Host
from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.storage.vfs import FileSystem, SparseFile
from repro.vm.image import make_memory_state


def make_channel(size=4 * 1024 * 1024, zero_fraction=0.9,
                 server_speed=1.0, client_speed=1.0):
    env = Environment()
    server = Host(env, "server", cpus=2, cpu_speed=server_speed)
    client = Host(env, "client", cpus=2, cpu_speed=client_speed)
    inode = server.local.fs.create("/state")
    inode.data = make_memory_state(size, zero_fraction, seed=9)
    fh = FileHandle("x", inode.fileid)
    locator = RemoteFileLocator(
        resolve=lambda handle: server.local.fs.get_inode(handle.fileid),
        server_host=server, server_fs=server.local, client_host=client)
    scp = ScpTransfer(env, Route([Link(env, 0.019, 30e6)]))
    cache = ProxyFileCache(env, client.local)
    channel = FileChannel(env, locator, scp, cache)
    return env, channel, fh, inode


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    env.process(wrapper(env))
    env.run()
    return box


def test_fetch_installs_identical_content():
    env, channel, fh, inode = make_channel()
    box = run(env, channel.fetch(fh))
    entry = box["value"]
    assert entry.size == inode.data.size
    assert (entry.inode.data.read(0, entry.size)
            == inode.data.read(0, inode.data.size))
    assert fh in channel.file_cache


def test_fetch_compresses_zero_rich_state_hard():
    env, channel, fh, _ = make_channel(zero_fraction=0.95)
    run(env, channel.fetch(fh))
    assert channel.bytes_on_wire < channel.bytes_logical / 10


def test_fetch_time_scales_with_compress_cpu():
    """A slower image-server CPU lengthens the gzip stage."""
    def fetch_time(server_speed):
        env, channel, fh, _ = make_channel(server_speed=server_speed)
        return run(env, channel.fetch(fh))["t"]

    assert fetch_time(0.5) > fetch_time(2.0)


def test_upload_roundtrip_updates_server():
    env, channel, fh, inode = make_channel()
    run(env, channel.fetch(fh))

    def modify_and_upload(env):
        yield env.process(channel.file_cache.write(fh, 0, b"LOCAL-EDIT"))
        yield env.process(channel.upload(fh))

    run(env, modify_and_upload(env))
    assert inode.data.read(0, 10) == b"LOCAL-EDIT"
    assert channel.uploads == 1
    assert not channel.file_cache.entry(fh).dirty


def test_upload_requires_cached_entry():
    env, channel, fh, _ = make_channel()

    def proc(env):
        try:
            yield env.process(channel.upload(fh))
        except KeyError:
            return "refused"

    box = run(env, proc(env))
    assert box["value"] == "refused"


def test_compression_model_stats_accumulate():
    env, channel, fh, inode = make_channel()
    run(env, channel.fetch(fh))
    assert channel.fetches == 1
    assert channel.bytes_logical == inode.data.size
    assert 0 < channel.bytes_on_wire < inode.data.size
