"""Tests for access profiling and profile-driven prefetch (§6)."""

import pytest

from repro.core.profiler import (
    AccessProfile,
    AccessProfiler,
    ApplicationKnowledgeBase,
    Prefetcher,
)
from repro.nfs.protocol import FileHandle, NfsProc, NfsRequest
from tests.core.harness import Rig


FH = FileHandle("images", 9)


def read_req(offset, count=8192, fh=FH):
    return NfsRequest(NfsProc.READ, fh=fh, offset=offset, count=count)


# -- AccessProfiler -------------------------------------------------------------

def test_profiler_records_first_touch_order():
    p = AccessProfiler("app")
    p.observe(read_req(2 * 8192))
    p.observe(read_req(0))
    p.observe(read_req(2 * 8192))  # duplicate: ignored
    profile = p.stop()
    assert profile.blocks == (("images", 9, 2), ("images", 9, 0))


def test_profiler_spanning_read_covers_all_blocks():
    p = AccessProfiler("app")
    p.observe(read_req(8192 - 100, count=300))
    profile = p.stop()
    assert profile.blocks == (("images", 9, 0), ("images", 9, 1))


def test_profiler_ignores_non_reads_and_stops():
    p = AccessProfiler("app")
    p.observe(NfsRequest(NfsProc.WRITE, fh=FH, offset=0, data=b"x"))
    p.observe(NfsRequest(NfsProc.GETATTR, fh=FH))
    profile = p.stop()
    assert profile.n_blocks == 0
    p.observe(read_req(0))  # after stop: not recorded
    assert p.stop().n_blocks == 0


def test_profile_serialization_roundtrip():
    profile = AccessProfile("latex", (("i", 3, 0), ("i", 3, 7)), 8192)
    again = AccessProfile.from_bytes(profile.to_bytes())
    assert again == profile
    with pytest.raises(ValueError):
        AccessProfile.from_bytes(b"junk\n{}")


def test_profile_sizes():
    profile = AccessProfile("a", (("i", 1, 0), ("i", 1, 1)), 8192)
    assert profile.n_blocks == 2
    assert profile.bytes_covered == 16384


# -- ApplicationKnowledgeBase ----------------------------------------------------

def test_knowledge_base_remember_recall():
    kb = ApplicationKnowledgeBase()
    profile = AccessProfile("latex", (("i", 1, 0),))
    kb.remember(profile)
    assert kb.recall("latex") == profile
    assert kb.recall("unknown") is None
    assert kb.applications() == ["latex"]


def test_knowledge_base_export_import():
    kb = ApplicationKnowledgeBase()
    kb.remember(AccessProfile("latex", (("i", 1, 0),)))
    raw = kb.export("latex")
    kb2 = ApplicationKnowledgeBase()
    assert kb2.import_profile(raw).application == "latex"
    assert kb2.recall("latex") is not None


# -- end-to-end: record in session 1, prefetch in session 2 ----------------------

def read_blocks(rig, path, blocks):
    def proc(env):
        f = yield env.process(rig.mount.open(path))
        for b in blocks:
            yield env.process(f.read(b * 8192, 8192))
    rig.run(proc(rig.env))


def test_profile_then_prefetch_accelerates_cold_session():
    blocks = [0, 7, 3, 11, 5, 2, 9, 14, 1, 13]
    path = "/images/golden/disk.vmdk"

    # Session 1: record the application's access profile at the proxy.
    rig1 = Rig(metadata=False)
    profiler = AccessProfiler("scattered-app")
    rig1.session.client_proxy.read_observers.append(profiler.observe)
    read_blocks(rig1, path, blocks)
    profile = profiler.stop()
    assert profile.n_blocks == len(blocks)

    kb = ApplicationKnowledgeBase()
    kb.remember(profile)

    # Session 2 (fresh rig = fresh caches): demand-paged baseline.
    rig2 = Rig(metadata=False)
    t0 = rig2.env.now

    def timed_reads(rig):
        box = {}

        def proc(env):
            start = env.now
            f = yield env.process(rig.mount.open(path))
            for b in blocks:
                yield env.process(f.read(b * 8192, 8192))
            box["t"] = env.now - start

        rig.env.process(proc(rig.env))
        rig.env.run()
        return box["t"]

    demand_time = timed_reads(rig2)

    # Session 3: prefetch from the recalled profile, then run.
    rig3 = Rig(metadata=False)
    # Profiles carry (fsid, fileid) of the image server; the fresh rig
    # serves the same image tree, so ids match.
    recalled = kb.recall("scattered-app")

    def prefetch_then_read(env):
        prefetcher = Prefetcher(env, rig3.session.client_proxy,
                                concurrency=8)
        yield env.process(prefetcher.prefetch(recalled))
        box = {}
        start = env.now
        f = yield env.process(rig3.mount.open(path))
        for b in blocks:
            yield env.process(f.read(b * 8192, 8192))
        return env.now - start, prefetcher.blocks_fetched

    boxv = {}

    def wrapper(env):
        boxv["value"] = yield env.process(prefetch_then_read(env))

    rig3.env.process(wrapper(rig3.env))
    rig3.env.run()
    run_time, fetched = boxv["value"]

    assert fetched == len(blocks)
    # Demand reads after prefetch hit the proxy cache; what remains is
    # the open-time LOOKUP walk over the WAN (~3 round trips).
    assert run_time < demand_time / 4
    assert rig3.session.client_proxy.stats.block_cache_hits >= len(blocks)


def test_prefetch_skips_already_cached_blocks():
    rig = Rig(metadata=False)
    path = "/images/golden/disk.vmdk"
    # Non-adjacent blocks: the proxy's sequential-readahead run detector
    # must not fire and pre-populate the block we expect to be fetched.
    read_blocks(rig, path, [0, 2])
    fileid = rig.endpoint.export.fs.lookup(path).fileid
    profile = AccessProfile("app", (("images", fileid, 0),
                                    ("images", fileid, 2),
                                    ("images", fileid, 4)))

    def proc(env):
        prefetcher = Prefetcher(env, rig.session.client_proxy)
        yield env.process(prefetcher.prefetch(profile))
        return prefetcher.blocks_fetched, prefetcher.blocks_skipped

    (fetched, skipped), _ = rig.run(proc(rig.env))
    assert fetched == 1
    assert skipped == 2


def test_prefetcher_requires_cache_and_valid_concurrency():
    rig = Rig(metadata=False)
    with pytest.raises(ValueError):
        Prefetcher(rig.env, rig.session.client_proxy, concurrency=0)
    from repro.core.proxy import GvfsProxy
    from repro.core.config import ProxyConfig
    bare = GvfsProxy(rig.env, rig.session.client_proxy.upstream,
                     ProxyConfig(name="bare"))
    with pytest.raises(ValueError):
        Prefetcher(rig.env, bare)
