"""Tests for the write-through proxy cache policy (§3.2.1: write policy
is a per-application middleware choice)."""

import pytest

from repro.core.config import CachePolicy, ProxyCacheConfig
from tests.core.harness import Rig

WT_CACHE = ProxyCacheConfig(capacity_bytes=64 * 1024 * 1024,
                            n_banks=32, associativity=4,
                            policy=CachePolicy.WRITE_THROUGH)


def make_rig():
    return Rig(metadata=False, cache_config=WT_CACHE)


def test_write_through_reaches_server_immediately():
    rig = make_rig()

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/wt.bin"))
        yield env.process(f.write_sync(0, b"through"))
        return rig.endpoint.export.fs.read("/images/golden/wt.bin")

    value, _ = rig.run(proc(rig.env))
    assert value == b"through"
    assert rig.session.client_proxy.stats.absorbed_writes == 0


def test_write_through_still_caches_for_reads():
    rig = make_rig()

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/wt.bin"))
        yield env.process(f.write_sync(0, b"X" * 8192))
        rig.mount.drop_caches()
        f2 = yield env.process(rig.mount.open("/images/golden/wt.bin"))
        before = rig.session.client_proxy.stats.block_cache_hits
        data = yield env.process(f2.read(0, 8192))
        return before, rig.session.client_proxy.stats.block_cache_hits, data

    (before, after, data), _ = rig.run(proc(rig.env))
    assert after == before + 1     # the written block was cached
    assert data == b"X" * 8192


def test_write_through_slower_than_write_back_on_wan():
    def burst_time(policy):
        cache = ProxyCacheConfig(capacity_bytes=64 * 1024 * 1024,
                                 n_banks=32, associativity=4, policy=policy)
        rig = Rig(metadata=False, cache_config=cache)

        def proc(env):
            f = yield env.process(rig.mount.create("/images/golden/b.bin"))
            t0 = env.now
            yield env.process(f.write_sync(0, b"z" * (512 * 1024)))
            return env.now - t0

        value, _ = rig.run(proc(rig.env))
        return value

    wt = burst_time(CachePolicy.WRITE_THROUGH)
    wb = burst_time(CachePolicy.WRITE_BACK)
    assert wb < wt / 5


def test_write_through_commit_forwarded():
    rig = make_rig()

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/c.bin"))
        yield env.process(f.write(0, b"C"))
        yield env.process(f.close())

    rig.run(proc(rig.env))
    assert rig.session.client_proxy.stats.absorbed_commits == 0


def test_write_through_flush_has_nothing_to_do():
    rig = make_rig()

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/d.bin"))
        yield env.process(f.write_sync(0, b"D" * 8192))
        blocks, files = rig.session.client_proxy.dirty_state()
        yield env.process(rig.session.client_proxy.flush())
        return blocks, files

    (blocks, files), _ = rig.run(proc(rig.env))
    assert blocks == 0 and files == 0
