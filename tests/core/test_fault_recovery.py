"""Degraded-mode proxying and crash recovery: cached reads with the
upstream down, the dirty high-water mark, the dirty-frame journal, and
flush consistency across a server crash."""

import hashlib
from dataclasses import replace

from repro.core.config import ProxyCacheConfig
from repro.nfs.protocol import FileHandle, NfsProc, NfsRequest, NfsStatus
from repro.nfs.rpc import RpcTimeout
from repro.sim.faults import FaultInjector, FaultPlan
from tests.core.harness import SMALL_CACHE, Rig

BS = 8192
PATH = "/images/golden/disk.vmdk"

JOURNALED = replace(SMALL_CACHE, journal=True)


def fh_for(rig, path=PATH):
    return FileHandle("images", rig.endpoint.export.fs.lookup(path).fileid)


def block(tag):
    return bytes([tag]) * BS


# --------------------------------------------------------------------------
# Degraded reads
# --------------------------------------------------------------------------

def test_cached_reads_survive_upstream_outage_in_degraded_mode():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy
    client = rig.session.harden_rpc(timeout=0.25, max_retries=1,
                                    breaker_threshold=2, breaker_reset=60.0)
    fh = fh_for(rig)

    def job(env):
        warm = yield from proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=0, count=BS))
        assert warm.ok
        rig.endpoint.server.crash()
        misses = []
        for b in (50, 70):                # non-adjacent: no readahead
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.READ, fh=fh, offset=b * BS, count=BS))
            misses.append(reply)
        assert client.breaker.currently_open(env.now)
        cached = yield from proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=0, count=BS))
        return warm, misses, cached

    (warm, misses, cached), _ = rig.run(job(rig.env))
    # Uncached blocks fail cleanly; the cached block is still served.
    assert all(r.status is NfsStatus.IO for r in misses)
    assert cached.ok and cached.data == warm.data
    assert proxy.stats.degraded_reads == 1
    assert proxy.stats.degraded_read_errors == 2
    assert client.breaker.trips == 1


# --------------------------------------------------------------------------
# Dirty high-water mark
# --------------------------------------------------------------------------

def test_high_water_drains_dirty_blocks_while_upstream_is_up():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy
    rig.session.harden_rpc(timeout=1.0, max_retries=3,
                           dirty_high_water_blocks=4)
    fh = fh_for(rig)

    def job(env):
        for b in range(8):
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=b * BS, data=block(b + 1)))
            assert reply.ok

    rig.run(job(rig.env))
    assert proxy.stats.high_water_writebacks >= 1
    assert proxy.stats.degraded_write_rejects == 0
    assert proxy.block_cache.dirty_frames <= 4


def test_high_water_rejects_writes_when_upstream_down():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy
    client = rig.session.harden_rpc(timeout=0.25, max_retries=0,
                                    breaker_threshold=1, breaker_reset=60.0,
                                    dirty_high_water_blocks=2)
    fh = fh_for(rig)

    def job(env):
        rig.endpoint.server.crash()
        # Absorbed below the mark even with the server gone...
        for b in range(2):
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=b * BS, data=block(b + 1)))
            assert reply.ok
        # ...then trip the breaker with a miss read.
        miss = yield from proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=50 * BS, count=BS))
        assert miss.status is NfsStatus.IO
        assert client.breaker.currently_open(env.now)
        return (yield from proxy.handle(NfsRequest(
            NfsProc.WRITE, fh=fh, offset=2 * BS, data=block(3))))

    rejected, _ = rig.run(job(rig.env))
    assert rejected.status is NfsStatus.IO
    assert proxy.stats.degraded_write_rejects == 1
    assert proxy.block_cache.dirty_frames == 2    # absorbed writes kept


# --------------------------------------------------------------------------
# Dirty-frame journal
# --------------------------------------------------------------------------

def test_journal_recovers_dirty_set_after_proxy_crash():
    rig = Rig(metadata=False, cache_config=JOURNALED)
    proxy = rig.session.client_proxy
    fh = fh_for(rig)
    server_fs = rig.endpoint.export.fs

    def job(env):
        for b in range(6):
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=b * BS, data=block(b + 1)))
            assert reply.ok
        proxy.crash()
        assert proxy.block_cache.dirty_frames == 0    # tags are gone
        recovered = yield env.process(proxy.recover())
        yield env.process(proxy.flush())
        return recovered

    recovered, _ = rig.run(job(rig.env))
    assert [key[1] for key in recovered] == list(range(6))
    assert proxy.stats.proxy_crashes == 1
    assert proxy.stats.recovered_dirty_blocks == 6
    for b in range(6):                    # nothing lost: bytes made it
        assert server_fs.read(PATH, b * BS, BS) == block(b + 1)
    assert proxy.block_cache.dirty_frames == 0
    # The journal compacts once the recovered dirty set is flushed.
    assert proxy.block_cache._journal_inode.data.size == 0


def test_without_journal_crash_loses_absorbed_writes():
    rig = Rig(metadata=False)             # journal off by default
    proxy = rig.session.client_proxy
    fh = fh_for(rig)
    server_fs = rig.endpoint.export.fs

    def job(env):
        for b in range(6):
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=b * BS, data=block(b + 1)))
            assert reply.ok
        proxy.crash()
        recovered = yield env.process(proxy.recover())
        yield env.process(proxy.flush())
        return recovered

    recovered, _ = rig.run(job(rig.env))
    assert recovered == []
    assert proxy.stats.recovered_dirty_blocks == 0
    for b in range(6):                    # absorbed writes are gone
        assert server_fs.read(PATH, b * BS, BS) != block(b + 1)


def test_journal_records_removed_after_clean_writeback():
    rig = Rig(metadata=False, cache_config=JOURNALED)
    proxy = rig.session.client_proxy
    fh = fh_for(rig)

    def job(env):
        for b in range(4):
            yield from proxy.handle(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=b * BS, data=block(b + 1)))
        yield env.process(proxy.flush())
        proxy.crash()
        recovered = yield env.process(proxy.recover())
        return recovered

    recovered, _ = rig.run(job(rig.env))
    assert recovered == []                # flushed before the crash
    assert proxy.block_cache.journal_appends == 4


# --------------------------------------------------------------------------
# Consistency under failure: flush interrupted by a server crash
# --------------------------------------------------------------------------

def test_flush_interrupted_by_server_crash_retries_to_consistency():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy
    rig.session.harden_rpc(timeout=0.5, max_retries=1, backoff=2.0,
                           breaker_threshold=3, breaker_reset=1.0)
    fh = fh_for(rig)
    server_fs = rig.endpoint.export.fs
    injector = FaultInjector(rig.env)
    injector.attach("server", rig.endpoint.server)
    payload = b"".join(block((b % 251) + 1) for b in range(16))

    def job(env):
        for b in range(16):
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=b * BS,
                data=payload[b * BS:(b + 1) * BS]))
            assert reply.ok
        injector.schedule(FaultPlan.server_outage(
            "server", at=env.now + 0.01, down_for=2.0))
        attempts = 1
        while True:
            try:
                yield env.process(proxy.flush())
                return attempts
            except RpcTimeout:
                attempts += 1
                yield env.timeout(0.25)

    attempts, _ = rig.run(job(rig.env))
    assert attempts > 1                   # the crash really interrupted it
    assert rig.endpoint.server.crashes == 1
    assert injector.timeline[0][1] == "server-crash"
    server_bytes = server_fs.read(PATH, 0, 16 * BS)
    assert (hashlib.sha256(server_bytes).hexdigest()
            == hashlib.sha256(payload).hexdigest())
    assert not proxy.block_cache.dirty_blocks()


def test_journal_recovery_discards_corrupted_record():
    """Media corruption after a record was journaled makes that
    record's crc stale: recovery discards exactly that record and
    replays the rest — garbled bytes are never flushed upstream."""
    rig = Rig(metadata=False, cache_config=JOURNALED)
    proxy = rig.session.client_proxy
    fh = fh_for(rig)
    server_fs = rig.endpoint.export.fs
    before = server_fs.read(PATH, 1 * BS, BS)

    def job(env):
        for b in range(3):
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=b * BS, data=block(b + 1)))
            assert reply.ok
        # The frame holding block 1 is garbled on disk *after* its
        # journal record landed; the record's crc no longer matches.
        assert proxy.block_cache.corrupt_frame((fh, 1))
        proxy.crash()
        recovered = yield env.process(proxy.recover())
        yield env.process(proxy.flush())
        return recovered

    recovered, _ = rig.run(job(rig.env))
    assert [key[1] for key in recovered] == [0, 2]   # exactly block 1 dropped
    assert proxy.stats.recovered_dirty_blocks == 2
    for b in (0, 2):                      # the intact records replayed
        assert server_fs.read(PATH, b * BS, BS) == block(b + 1)
    # Block 1 was neither flushed garbled nor flushed at all.
    after = server_fs.read(PATH, 1 * BS, BS)
    assert after == before and after != block(2)
    assert proxy.block_cache.dirty_frames == 0
