"""Shared wiring for GVFS core integration tests: a small testbed with
a seeded image server and session builders per scenario."""

from repro.core.config import CachePolicy, ProxyCacheConfig
from repro.core.session import GvfsSession, Scenario, SecondLevelCache, ServerEndpoint
from repro.net.topology import Testbed
from repro.nfs.client import MountOptions
from repro.sim import Environment
from repro.vm.image import VmConfig, VmImage

#: A small, fast test cache geometry (64 MB, 32 banks, 4-way).
SMALL_CACHE = ProxyCacheConfig(capacity_bytes=64 * 1024 * 1024,
                               n_banks=32, associativity=4)


class Rig:
    """Testbed + WAN image server + one session."""

    def __init__(self, scenario=Scenario.WAN_CACHED, n_compute=1,
                 cache_config=SMALL_CACHE, mount_options=None,
                 metadata=True, image_mb=4, via_second_level=False):
        self.testbed = Testbed(Environment(), n_compute=n_compute)
        self.env = self.testbed.env
        self.endpoint = ServerEndpoint(self.env, self.testbed.wan_server)
        self.second_level = (SecondLevelCache(self.testbed, self.endpoint,
                                              SMALL_CACHE)
                             if via_second_level else None)
        self.image = VmImage.create(
            self.endpoint.export.fs, "/images/golden",
            VmConfig(name="golden", memory_mb=image_mb, disk_gb=0.01, seed=7))
        self.sessions = [
            GvfsSession.build(self.testbed, scenario, endpoint=self.endpoint,
                              compute_index=i, cache_config=cache_config,
                              mount_options=mount_options, metadata=metadata,
                              via=self.second_level)
            for i in range(n_compute)]
        self.session = self.sessions[0]
        self.mount = self.session.mount

    def run(self, gen):
        box = {}

        def wrapper(env):
            box["value"] = yield env.process(gen)
            box["t"] = env.now

        self.env.process(wrapper(self.env))
        self.env.run()
        return box["value"], box["t"]
