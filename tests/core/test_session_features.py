"""Tests for session-level features: shared caches, consistency signals,
channel upload, statistics collection."""

import pytest

from repro.analysis.stats import collect_session_stats
from repro.core.blockcache import ProxyBlockCache
from repro.core.consistency import ConsistencySignal, MiddlewareConsistency
from repro.core.session import GvfsSession, Scenario
from tests.core.harness import Rig, SMALL_CACHE


# -- shared read-only block cache -------------------------------------------------

def make_shared_rig():
    rig = Rig(metadata=False, n_compute=1)
    shared = ProxyBlockCache(rig.env, rig.testbed.compute[0].local,
                             SMALL_CACHE, name="shared-ro", read_only=True)
    second = GvfsSession.build(rig.testbed, Scenario.WAN_CACHED,
                               endpoint=rig.endpoint,
                               shared_block_cache=shared)
    third = GvfsSession.build(rig.testbed, Scenario.WAN_CACHED,
                              endpoint=rig.endpoint,
                              shared_block_cache=shared)
    return rig, shared, second, third


def test_shared_cache_serves_across_sessions():
    rig, shared, s2, s3 = make_shared_rig()

    def fill(env):
        f = yield env.process(s2.mount.open("/images/golden/disk.vmdk"))
        yield env.process(f.read(0, 8192))

    rig.run(fill(rig.env))
    assert shared.cached_blocks >= 1

    def reread(env):
        f = yield env.process(s3.mount.open("/images/golden/disk.vmdk"))
        before = s3.client_proxy.stats.block_cache_hits
        yield env.process(f.read(0, 8192))
        return before, s3.client_proxy.stats.block_cache_hits

    (before, after), _ = rig.run(reread(rig.env))
    assert after == before + 1  # hit on the *other* session's fill


def test_shared_cache_sessions_forward_writes():
    rig, shared, s2, _ = make_shared_rig()

    def proc(env):
        f = yield env.process(s2.mount.create("/images/golden/out.bin"))
        yield env.process(f.write(0, b"shared-write"))
        yield env.process(f.close())

    rig.run(proc(rig.env))
    # The write went upstream (no write-back absorb possible).
    assert s2.client_proxy.stats.absorbed_writes == 0
    assert rig.endpoint.export.fs.read("/images/golden/out.bin") \
        == b"shared-write"


# -- consistency signals ------------------------------------------------------------

def test_write_back_signal_keeps_caches_warm():
    rig = Rig(metadata=False)
    consistency = MiddlewareConsistency(rig.env)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/wb.bin"))
        yield env.process(f.write(0, b"W" * 8192))
        yield env.process(f.close())
        yield env.process(consistency.signal(rig.session.client_proxy,
                                             ConsistencySignal.WRITE_BACK))
        return rig.session.client_proxy.block_cache.cached_blocks

    cached_after, _ = rig.run(proc(rig.env))
    assert cached_after > 0  # WRITE_BACK does not invalidate
    assert rig.endpoint.export.fs.read("/images/golden/wb.bin") == b"W" * 8192
    assert consistency.log[0].signal is ConsistencySignal.WRITE_BACK


def test_flush_signal_invalidates():
    rig = Rig(metadata=False)
    consistency = MiddlewareConsistency(rig.env)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/fl.bin"))
        yield env.process(f.write(0, b"F" * 100))
        yield env.process(f.close())
        yield env.process(consistency.signal(rig.session.client_proxy,
                                             ConsistencySignal.FLUSH))
        return rig.session.client_proxy.block_cache.cached_blocks

    cached_after, _ = rig.run(proc(rig.env))
    assert cached_after == 0
    assert rig.endpoint.export.fs.read("/images/golden/fl.bin") == b"F" * 100


def test_session_end_flushes_all_proxies():
    rig = Rig(metadata=False)
    consistency = MiddlewareConsistency(rig.env)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/x.bin"))
        yield env.process(f.write(0, b"X"))
        yield env.process(f.close())
        yield env.process(consistency.session_end(
            [rig.session.client_proxy]))

    rig.run(proc(rig.env))
    assert len(consistency.log) == 1
    assert consistency.log[0].duration >= 0


# -- channel upload (file-cache write-back) ---------------------------------------

def test_dirty_file_cache_entry_uploaded_on_flush():
    rig = Rig(image_mb=2)
    rig.image.generate_metadata()
    mem = rig.image.memory_inode
    nonzero = next(i for i in range(mem.data.n_chunks())
                   if not mem.data.chunk_is_zero(i))

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        # Pull through the channel, then modify the cached copy.
        yield env.process(f.read(nonzero * 8192, 8192))
        yield env.process(f.write_sync(nonzero * 8192, b"MODIFIED!"))
        before = mem.data.read(nonzero * 8192, 9)
        yield env.process(rig.session.client_proxy.flush())
        after = mem.data.read(nonzero * 8192, 9)
        return before, after

    (before, after), _ = rig.run(proc(rig.env))
    assert before != b"MODIFIED!"
    assert after == b"MODIFIED!"
    assert rig.session.client_proxy.channel.uploads == 1


# -- statistics collection ----------------------------------------------------------

def test_collect_session_stats_aggregates_chain():
    rig = Rig()
    rig.image.generate_metadata()

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        offset = 0
        while offset < f.size:
            data = yield env.process(f.read(offset, 8192))
            offset += len(data)
        # Hit the buffer cache once.
        yield env.process(f.read(0, 8192))

    rig.run(proc(rig.env))
    stats = collect_session_stats(rig.session)
    assert stats.rpc_calls > 0
    assert stats.zero_filtered_reads > 0
    assert stats.channel_fetches == 1
    assert stats.channel_compression_ratio < 0.5
    assert 0 < stats.buffer_cache_hit_rate < 1
    summary = stats.summary()
    assert "zero-filtered" in summary
    assert "channel fetches" in summary


def test_collect_session_stats_local_scenario():
    rig = Rig(scenario=Scenario.LOCAL)
    stats = collect_session_stats(rig.session)
    assert stats.rpc_calls == 0
    assert stats.buffer_cache_hit_rate == 0.0
    assert stats.block_cache_hit_rate == 0.0
