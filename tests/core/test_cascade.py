"""N-level cascade behaviour: level-by-level serving, deep reset and
snapshots, cascade discovery through RPC handlers, and the aggregated
cascade report."""

import pytest

from repro.core.layers import (
    disable_stack_reports,
    enable_stack_reports,
    format_cascade_reports,
)
from repro.core.session import (
    CascadeLevelSpec,
    GvfsSession,
    Scenario,
    ServerEndpoint,
    build_cascade,
)
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.vm.image import VmConfig, VmImage
from tests.core.harness import SMALL_CACHE


def make_rig(n_levels=2):
    testbed = Testbed(Environment(), n_compute=1)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2, disk_gb=0.01,
                                    seed=47))
    cascade = build_cascade(testbed, endpoint, [SMALL_CACHE] * n_levels)
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=SMALL_CACHE,
                                via=cascade)
    return testbed, endpoint, image, cascade, session


def run(testbed, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    testbed.env.process(wrapper(testbed.env))
    testbed.env.run()
    return box


def read_block(session, block):
    def gen(env):
        f = yield env.process(session.mount.open("/images/golden/disk.vmdk"))
        data = yield env.process(f.read(block * 8192, 8192))
        return data
    return gen


def restart(testbed, session, cascade, tiers):
    """Cold-restart the client plus the first ``tiers - 1`` levels."""
    def gen(env):
        yield env.process(session.cold_caches())
        for level in cascade.levels[:tiers - 1]:
            yield env.process(level.proxy.quiesce())
            level.proxy.invalidate_caches()
    run(testbed, gen(testbed.env))


def test_reads_fill_every_cascade_level():
    testbed, endpoint, image, cascade, session = make_rig()
    box = run(testbed, read_block(session, 0)(testbed.env))
    assert box["value"] == image.disk_inode.data.read(0, 8192)
    assert session.client_proxy.block_cache.cached_blocks >= 1
    for level in cascade.levels:
        assert level.block_cache.cached_blocks >= 1


def test_tier_restart_is_served_by_the_next_level():
    """After cold-restarting tiers 1..j, the refill comes from tier
    j+1 — no deeper level (or the origin) sees the READ again."""
    testbed, endpoint, image, cascade, session = make_rig()
    run(testbed, read_block(session, 0)(testbed.env))
    l2, l3 = cascade.levels

    restart(testbed, session, cascade, tiers=1)
    hits_before = l2.proxy.stats.block_cache_hits
    origin_reads = l3.proxy.upstream.stats.by_proc.get("READ", 0)
    run(testbed, read_block(session, 0)(testbed.env))
    assert l2.proxy.stats.block_cache_hits == hits_before + 1
    assert l3.proxy.upstream.stats.by_proc.get("READ", 0) == origin_reads

    restart(testbed, session, cascade, tiers=2)
    hits_before = l3.proxy.stats.block_cache_hits
    origin_reads = l3.proxy.upstream.stats.by_proc.get("READ", 0)
    run(testbed, read_block(session, 0)(testbed.env))
    assert l3.proxy.stats.block_cache_hits == hits_before + 1
    assert l3.proxy.upstream.stats.by_proc.get("READ", 0) == origin_reads


def test_cascade_stacks_discovered_through_rpc_handlers():
    testbed, endpoint, image, cascade, session = make_rig()
    stacks = session.client_proxy.cascade_stacks()
    # client + two cache levels + the server-side forwarding proxy.
    assert stacks == [session.client_proxy, cascade.levels[0].proxy,
                      cascade.levels[1].proxy, endpoint.proxy]


def test_deep_reset_covers_every_level():
    testbed, endpoint, image, cascade, session = make_rig()
    run(testbed, read_block(session, 0)(testbed.env))
    assert endpoint.proxy.front_stats.requests > 0
    session.client_proxy.reset(deep=True)
    # Gauges survive a stats reset: capacity is geometry, occupancy and
    # the bypass flag describe live state, not accumulated traffic.
    gauges = {"capacity_frames", "cached_blocks", "bypassed"}
    for stack in session.client_proxy.cascade_stacks():
        assert stack.front_stats.requests == 0
        snap = stack.stats_snapshot()
        assert all(v == 0 for counters in snap.values()
                   for key, v in counters.items() if key not in gauges)


def test_shallow_reset_leaves_upstream_levels_alone():
    testbed, endpoint, image, cascade, session = make_rig()
    run(testbed, read_block(session, 0)(testbed.env))
    session.client_proxy.reset(deep=False)
    assert session.client_proxy.front_stats.requests == 0
    assert cascade.levels[0].proxy.front_stats.requests > 0


def test_deep_snapshot_nests_the_whole_cascade():
    testbed, endpoint, image, cascade, session = make_rig()
    run(testbed, read_block(session, 0)(testbed.env))
    snap = session.client_proxy.stats_snapshot(deep=True)
    names = []
    while "upstream" in snap:
        names.append(snap["upstream"]["name"])
        snap = snap["upstream"]["layers"]
    assert names == [cascade.levels[0].proxy.config.name,
                     cascade.levels[1].proxy.config.name,
                     endpoint.proxy.config.name]
    # The default (shallow) snapshot shape is unchanged.
    assert "upstream" not in session.client_proxy.stats_snapshot()


def test_cascade_report_covers_every_level():
    enable_stack_reports()
    try:
        testbed, endpoint, image, cascade, session = make_rig()
        run(testbed, read_block(session, 0)(testbed.env))
        report = format_cascade_reports()
    finally:
        disable_stack_reports()
    assert report.count("cascade from") == 1
    for line in ("L1 ", "L2 ", "L3 ", "L4 "):
        assert line in report
    assert "eviction=lru" in report


def test_cascade_reset_and_snapshots_api():
    testbed, endpoint, image, cascade, session = make_rig()
    run(testbed, read_block(session, 0)(testbed.env))
    assert cascade.depth == 3
    assert cascade.top is cascade.levels[0]
    assert len(cascade.stats_snapshots()) == 2
    cascade.reset()
    gauges = {"capacity_frames", "cached_blocks", "bypassed"}
    assert all(v == 0 for snap in cascade.stats_snapshots()
               for counters in snap.values()
               for key, v in counters.items() if key not in gauges)


def test_per_level_eviction_policies():
    testbed = Testbed(Environment(), n_compute=1)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    from dataclasses import replace
    cascade = build_cascade(
        testbed, endpoint,
        [CascadeLevelSpec(cache_config=replace(SMALL_CACHE, eviction="2q")),
         CascadeLevelSpec(cache_config=replace(SMALL_CACHE,
                                               eviction="lfu"))])
    assert [level.block_cache.policy.name for level in cascade.levels] \
        == ["2q", "lfu"]


def test_cascade_levels_get_their_own_hosts():
    testbed, endpoint, image, cascade, session = make_rig()
    # The origin-adjacent level sits on the LAN image server; the
    # client-ward level gets a freshly attached host.
    assert cascade.levels[1].host is testbed.lan_server
    assert cascade.levels[0].host is not testbed.lan_server
    assert cascade.levels[0].host.name == "cascade-l2"


def test_add_host_rejects_duplicate_names():
    testbed = Testbed(Environment(), n_compute=1)
    testbed.add_host("rack-cache")
    with pytest.raises(ValueError):
        testbed.add_host("rack-cache")
