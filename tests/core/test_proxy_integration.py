"""End-to-end tests of the GVFS proxy chain: client -> proxy -> server."""

import pytest

from repro.core.metadata import MetadataAction, generate_metadata
from repro.core.session import Scenario
from repro.nfs.protocol import NfsProc
from tests.core.harness import Rig


def test_read_through_full_chain_matches_golden_bytes():
    rig = Rig()
    golden = rig.image.memory_inode.data

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        return (yield env.process(f.read(0, 65536)))

    value, _ = rig.run(proc(rig.env))
    assert value == golden.read(0, 65536)


def test_credentials_remapped_by_server_proxy():
    rig = Rig(scenario=Scenario.WAN)
    seen = []
    original_dispatch = rig.endpoint.server._dispatch

    def spying(req):
        seen.append(req.credentials)
        return original_dispatch(req)

    rig.endpoint.server._dispatch = spying

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/vm.cfg"))
        yield env.process(f.read(0, 100))

    rig.run(proc(rig.env))
    assert seen
    assert all(c == (1001, 1001) for c in seen)


def test_zero_blocks_filtered_locally():
    rig = Rig()
    rig.image.generate_metadata()
    meta = rig.image.generate_metadata()
    zero_block = min(meta.zero_blocks)

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        data = yield env.process(f.read(zero_block * 8192, 8192))
        return data

    value, _ = rig.run(proc(rig.env))
    assert value == bytes(8192)
    assert rig.session.client_proxy.stats.zero_filtered_reads >= 1


def test_zero_filter_count_matches_metadata():
    """Reading the whole memory state filters exactly the zero blocks."""
    rig = Rig(image_mb=2)
    # Zero map only, no channel actions: every non-zero block goes the
    # block path, every zero block is filtered.
    meta = generate_metadata(rig.endpoint.export.fs,
                             "/images/golden/mem.vmss", actions=[])
    n_zero = meta.n_zero_blocks

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        offset = 0
        while offset < f.size:
            data = yield env.process(f.read(offset, 8192))
            offset += len(data)

    rig.run(proc(rig.env))
    assert rig.session.client_proxy.stats.zero_filtered_reads == n_zero


def test_file_channel_fetch_serves_whole_file():
    rig = Rig()
    rig.image.generate_metadata()  # includes REMOTE_COPY actions
    golden = rig.image.memory_inode.data

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        out = bytearray()
        offset = 0
        while offset < f.size:
            data = yield env.process(f.read(offset, 8192))
            if not data:
                break
            out += data
            offset += len(data)
        return bytes(out)

    value, _ = rig.run(proc(rig.env))
    assert value == golden.read(0, golden.size)
    stats = rig.session.client_proxy.stats
    assert stats.channel_fetches == 1
    assert stats.file_cache_reads > 0


def test_file_channel_moves_fewer_bytes_than_file():
    rig = Rig(image_mb=4)
    rig.image.generate_metadata()

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        offset = 0
        while offset < f.size:
            data = yield env.process(f.read(offset, 8192))
            offset += len(data)

    rig.run(proc(rig.env))
    channel = rig.session.client_proxy.channel
    assert channel.bytes_on_wire < channel.bytes_logical / 2


def test_block_cache_hit_on_second_read():
    rig = Rig(metadata=False)

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/disk.vmdk"))
        yield env.process(f.read(0, 8192))
        rig.mount.drop_caches()  # defeat the kernel buffer cache
        f2 = yield env.process(rig.mount.open("/images/golden/disk.vmdk"))
        before = rig.session.client_proxy.stats.block_cache_hits
        yield env.process(f2.read(0, 8192))
        return before, rig.session.client_proxy.stats.block_cache_hits

    (before, after), _ = rig.run(proc(rig.env))
    assert after == before + 1


def test_block_cache_hit_faster_than_wan_miss():
    rig = Rig(metadata=False)

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/disk.vmdk"))
        t0 = env.now
        yield env.process(f.read(0, 8192))
        miss_time = env.now - t0
        rig.mount.drop_caches()
        f2 = yield env.process(rig.mount.open("/images/golden/disk.vmdk"))
        t0 = env.now
        yield env.process(f2.read(0, 8192))
        return miss_time, env.now - t0

    (miss, hit), _ = rig.run(proc(rig.env))
    assert hit < miss / 5


def test_write_back_absorbs_writes_locally():
    rig = Rig(metadata=False)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/redo.log"))
        t0 = env.now
        yield env.process(f.write(0, b"R" * 8192))
        yield env.process(f.close())
        elapsed = env.now - t0
        server_view = rig.endpoint.export.fs.read("/images/golden/redo.log")
        return elapsed, server_view

    (elapsed, server_view), _ = rig.run(proc(rig.env))
    # Data was absorbed by the proxy: fast, and not yet at the server.
    assert elapsed < 0.030  # under one WAN round trip
    assert server_view == b""
    assert rig.session.client_proxy.stats.absorbed_writes >= 1


def test_flush_pushes_dirty_blocks_to_server():
    rig = Rig(metadata=False)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/redo.log"))
        yield env.process(f.write(0, b"R" * 8192))
        yield env.process(f.close())
        yield env.process(rig.session.client_proxy.flush())
        return rig.endpoint.export.fs.read("/images/golden/redo.log")

    value, _ = rig.run(proc(rig.env))
    assert value == b"R" * 8192
    assert rig.session.client_proxy.stats.writebacks >= 1


def test_read_your_writes_through_write_back_proxy():
    rig = Rig(metadata=False)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/f.dat"))
        yield env.process(f.write(0, b"hello-gvfs"))
        yield env.process(f.close())
        rig.mount.drop_caches()  # force re-read through the proxy
        f2 = yield env.process(rig.mount.open("/images/golden/f.dat"))
        return (yield env.process(f2.read(0, 10)))

    value, _ = rig.run(proc(rig.env))
    assert value == b"hello-gvfs"


def test_getattr_size_patched_for_dirty_growth():
    rig = Rig(metadata=False,
              mount_options=None)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/grow.log"))
        yield env.process(f.write(0, b"G" * 20000))
        yield env.process(f.close())
        yield env.timeout(10)  # let the attr cache expire
        attrs = yield env.process(rig.mount.stat("/images/golden/grow.log"))
        return attrs.size

    value, _ = rig.run(proc(rig.env))
    assert value == 20000


def test_commit_absorbed_in_write_back_mode():
    rig = Rig(metadata=False)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/c.log"))
        yield env.process(f.write(0, b"C" * 100))
        yield env.process(f.close())  # close issues COMMIT

    rig.run(proc(rig.env))
    assert rig.session.client_proxy.stats.absorbed_commits >= 1


def test_invalidate_refuses_dirty_then_succeeds_after_flush():
    rig = Rig(metadata=False)

    def proc(env):
        f = yield env.process(rig.mount.create("/images/golden/d.log"))
        yield env.process(f.write(0, b"D"))
        yield env.process(f.close())
        try:
            rig.session.client_proxy.invalidate_caches()
            return "allowed"
        except RuntimeError:
            pass
        yield env.process(rig.session.client_proxy.flush())
        rig.session.client_proxy.invalidate_caches()
        return "ok"

    value, _ = rig.run(proc(rig.env))
    assert value == "ok"


def test_lan_scenario_builds_without_client_proxy():
    rig = Rig(scenario=Scenario.LAN)
    assert rig.session.client_proxy is None

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/vm.cfg"))
        return (yield env.process(f.read(0, 50)))

    value, _ = rig.run(proc(rig.env))
    assert value.startswith(b"displayName")


def test_local_scenario_has_plain_local_mount():
    rig = Rig(scenario=Scenario.LOCAL)
    lfs = rig.session.mount.lfs
    lfs.fs.mkdir("/vm")
    lfs.fs.create("/vm/file")
    lfs.fs.write("/vm/file", b"local-bytes")

    def proc(env):
        f = yield env.process(rig.session.mount.open("/vm/file"))
        return (yield env.process(f.read(0, 50)))

    value, _ = rig.run(proc(rig.env))
    assert value == b"local-bytes"


def test_wan_faster_than_wan_is_false_but_cached_faster_than_plain():
    """WAN+C beats WAN on repeated cold-buffer reads (the paper's >30%)."""
    def total_time(scenario):
        rig = Rig(scenario=scenario, metadata=False)

        def proc(env):
            for _ in range(3):
                f = yield env.process(
                    rig.mount.open("/images/golden/disk.vmdk"))
                for i in range(16):
                    yield env.process(f.read(i * 8192, 8192))
                rig.mount.drop_caches()

        _, t = rig.run(proc(rig.env))
        return t

    assert total_time(Scenario.WAN_CACHED) < total_time(Scenario.WAN) * 0.6


def test_second_level_cache_chain():
    rig = Rig(via_second_level=True)
    rig.image.generate_metadata()
    golden = rig.image.memory_inode.data

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        out = bytearray()
        offset = 0
        while offset < f.size:
            data = yield env.process(f.read(offset, 8192))
            if not data:
                break
            out += data
            offset += len(data)
        return bytes(out)

    value, _ = rig.run(proc(rig.env))
    assert value == golden.read(0, golden.size)
    # Both levels fetched through their channels.
    assert rig.second_level.channel.fetches == 1
    assert rig.session.client_proxy.channel.fetches == 1
