"""Byte-budget eviction in the whole-file proxy cache: clean LRU
entries make room, dirty entries never leave, overruns are counted."""

import pytest

from repro.core.filecache import ProxyFileCache
from repro.net.topology import Host
from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.vm.image import make_memory_state

MB = 1024 * 1024


def make_cache(capacity_bytes):
    env = Environment()
    host = Host(env, "proxy", cpus=2)
    return env, ProxyFileCache(env, host.local, capacity_bytes=capacity_bytes)


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield from gen
        box["t"] = env.now

    env.process(wrapper(env))
    env.run()
    return box["value"]


def install(env, cache, fileid, size):
    fh = FileHandle("x", fileid)
    content = make_memory_state(size, zero_fraction=0.5, seed=fileid)
    run(env, cache.install(fh, content))
    return fh


def test_unbounded_by_default():
    env, cache = make_cache(None)
    cache.capacity_bytes = None
    for i in range(4):
        install(env, cache, i, 1 * MB)
    assert cache.cached_files == 4
    assert cache.evictions == 0


def test_rejects_nonpositive_capacity():
    env = Environment()
    host = Host(env, "proxy", cpus=2)
    with pytest.raises(ValueError):
        ProxyFileCache(env, host.local, capacity_bytes=0)


def test_clean_lru_entry_evicted_over_budget():
    env, cache = make_cache(2 * MB)
    fh0 = install(env, cache, 0, 1 * MB)
    fh1 = install(env, cache, 1, 1 * MB)
    fh2 = install(env, cache, 2, 1 * MB)      # over budget: evict LRU (fh0)
    assert cache.evictions == 1
    assert fh0 not in cache
    assert fh1 in cache and fh2 in cache
    assert cache.bytes_cached <= 2 * MB


def test_read_refreshes_lru_order():
    env, cache = make_cache(2 * MB)
    fh0 = install(env, cache, 0, 1 * MB)
    fh1 = install(env, cache, 1, 1 * MB)
    run(env, cache.read(fh0, 0, 4096))        # fh0 now most recent
    install(env, cache, 2, 1 * MB)
    assert fh0 in cache
    assert fh1 not in cache


def test_dirty_entries_survive_and_count_overruns():
    env, cache = make_cache(2 * MB)
    fh0 = install(env, cache, 0, 1 * MB)
    fh1 = install(env, cache, 1, 1 * MB)
    run(env, cache.write(fh0, 0, b"x" * 4096))
    run(env, cache.write(fh1, 0, b"y" * 4096))
    # Growing a dirty entry past the budget with no clean victims left:
    # the write burst is allowed to overrun until the channel uploads.
    run(env, cache.write(fh1, 1 * MB, b"z" * (512 * 1024)))
    assert fh0 in cache and fh1 in cache      # never evict modifications
    assert cache.budget_overruns >= 1
    assert cache.bytes_cached > 2 * MB        # allowed to overrun

    # Once the channel uploads and marks them clean, the budget
    # re-enforces on the next cache activity.
    cache.mark_clean(fh0)
    cache.mark_clean(fh1)
    install(env, cache, 3, 1 * MB)
    assert cache.bytes_cached <= 2 * MB


def test_local_write_growth_charged_against_budget():
    env, cache = make_cache(2 * MB)
    fh0 = install(env, cache, 0, 1 * MB)
    fh1 = install(env, cache, 1, 1 * MB)
    # Appending past EOF grows the dirty entry beyond the budget: the
    # other (clean) entry is evicted to compensate.
    run(env, cache.write(fh1, 1 * MB, b"z" * (512 * 1024)))
    assert fh1 in cache
    assert fh0 not in cache
    assert cache.evictions == 1
