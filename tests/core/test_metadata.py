"""Tests for meta-data generation, serialization and queries (§3.2.2)."""

import pytest

from repro.core.metadata import (
    FILE_CHANNEL_ACTIONS,
    FileMetadata,
    MetadataAction,
    generate_memory_state_metadata,
    generate_metadata,
    metadata_name_for,
    metadata_path_for,
    scan_zero_blocks,
)
from repro.storage.vfs import CHUNK_SIZE, FileSystem, SparseFile


def test_metadata_path_naming():
    assert metadata_path_for("/images/vm1.vmss") == "/images/.vm1.vmss.gvfs"
    assert metadata_name_for("vm1.vmss") == ".vm1.vmss.gvfs"


def test_scan_zero_blocks_sparse():
    f = SparseFile(size=8 * CHUNK_SIZE)
    f.write(2 * CHUNK_SIZE, b"\x01")
    f.write(5 * CHUNK_SIZE + 100, b"\x02")
    zero = scan_zero_blocks(f, CHUNK_SIZE)
    assert zero == frozenset({0, 1, 3, 4, 6, 7})


def test_scan_zero_blocks_multichunk_block():
    f = SparseFile(size=8 * CHUNK_SIZE)
    f.write(3 * CHUNK_SIZE, b"\x01")
    zero = scan_zero_blocks(f, 2 * CHUNK_SIZE)  # blocks of 2 chunks
    assert zero == frozenset({0, 2, 3})  # block 1 covers chunks 2-3 (dirty)


def test_scan_zero_blocks_unaligned_block_size():
    f = SparseFile(size=10_000)
    f.write(5_000, b"\x01")
    zero = scan_zero_blocks(f, 3_000)  # not a multiple of CHUNK_SIZE
    assert 1 not in zero
    assert 0 in zero


def test_serialization_roundtrip():
    meta = FileMetadata(file_size=123456, block_size=8192,
                        zero_blocks=frozenset({0, 1, 2, 7, 9, 10}),
                        actions=FILE_CHANNEL_ACTIONS)
    again = FileMetadata.from_bytes(meta.to_bytes())
    assert again == meta


def test_serialization_rejects_bad_magic():
    with pytest.raises(ValueError):
        FileMetadata.from_bytes(b"NOT-META\n{}")


def test_rle_compactness():
    meta = FileMetadata(file_size=8192 * 100_000, block_size=8192,
                        zero_blocks=frozenset(range(90_000)))
    assert len(meta.to_bytes()) < 500  # one run, tiny file


def test_covers_read():
    meta = FileMetadata(file_size=10 * 8192, block_size=8192,
                        zero_blocks=frozenset({0, 1, 2, 5}))
    assert meta.covers_read(0, 8192)
    assert meta.covers_read(0, 3 * 8192)
    assert meta.covers_read(100, 200)          # inside block 0
    assert not meta.covers_read(2 * 8192, 2 * 8192)  # spans block 3
    assert not meta.covers_read(3 * 8192, 1)
    assert meta.covers_read(5 * 8192, 8192)
    assert meta.covers_read(0, 0)              # empty read trivially covered


def test_covers_read_clamps_to_file_size():
    meta = FileMetadata(file_size=8192 + 10, block_size=8192,
                        zero_blocks=frozenset({0, 1}))
    # Read beyond EOF only touches blocks 0-1, both zero.
    assert meta.covers_read(0, 100 * 8192)


def test_is_zero_block_and_counts():
    meta = FileMetadata(file_size=4 * 8192, block_size=8192,
                        zero_blocks=frozenset({1, 3}))
    assert meta.is_zero_block(1)
    assert not meta.is_zero_block(0)
    assert meta.n_blocks == 4
    assert meta.n_zero_blocks == 2


def test_generate_metadata_writes_special_file():
    fs = FileSystem()
    fs.mkdir("/images")
    fs.create("/images/mem.vmss", size=4 * 8192)
    fs.write("/images/mem.vmss", b"\x07" * 100, offset=8192)
    meta = generate_metadata(fs, "/images/mem.vmss",
                             actions=[MetadataAction.READ_LOCALLY])
    assert fs.exists("/images/.mem.vmss.gvfs")
    parsed = FileMetadata.from_bytes(fs.read("/images/.mem.vmss.gvfs"))
    assert parsed == meta
    assert parsed.zero_blocks == frozenset({0, 2, 3})
    assert parsed.actions == (MetadataAction.READ_LOCALLY,)


def test_generate_metadata_overwrites_previous():
    fs = FileSystem()
    fs.create("/f", size=8192)
    generate_metadata(fs, "/f")
    fs.write("/f", b"\x01")
    meta = generate_metadata(fs, "/f")
    assert meta.zero_blocks == frozenset()


def test_memory_state_metadata_uses_file_channel():
    fs = FileSystem()
    fs.create("/mem.vmss", size=16 * 8192)
    meta = generate_memory_state_metadata(fs, "/mem.vmss")
    assert meta.wants_file_channel
    assert meta.actions == FILE_CHANNEL_ACTIONS
    assert meta.n_zero_blocks == 16


def test_paper_zero_filter_ratio():
    """§3.2.2: a 512 MB post-boot memory image has ~92% zero blocks —
    the metadata machinery must report that fraction for such a file."""
    from repro.vm.image import make_memory_state  # deferred import
    f = make_memory_state(512 * 1024 * 1024, zero_fraction=0.92, seed=1)
    zero = scan_zero_blocks(f, 8192)
    total = (f.size + 8191) // 8192
    assert 0.90 < len(zero) / total < 0.94
