"""Pipelined proxy I/O: in-flight miss coalescing, sequential
readahead, failure cleanup, and coalesced write-back ordering."""

from repro.core.config import (
    ProxyCacheConfig,
    clear_pipeline_overrides,
    set_pipeline_overrides,
)
from repro.core.profiler import format_pipeline_report
from repro.nfs.protocol import FileHandle, NfsProc, NfsRequest, NfsStatus
from repro.sim import AllOf
from tests.core.harness import Rig

BS = 8192
PATH = "/images/golden/disk.vmdk"

#: One bank, one 2-way set: every block contends for two frames.
TINY = ProxyCacheConfig(capacity_bytes=2 * BS, n_banks=1, associativity=2)


def fh_for(rig, path=PATH):
    return FileHandle("images", rig.endpoint.export.fs.lookup(path).fileid)


def test_concurrent_cold_reads_coalesce_to_one_upstream_rpc():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy
    fh = fh_for(rig)

    def job(env):
        readers = [env.process(proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=0, count=BS)))
            for _ in range(8)]
        return (yield AllOf(env, readers))

    replies, _ = rig.run(job(rig.env))
    assert len(replies) == 8 and all(r.ok for r in replies)
    assert len({r.data for r in replies}) == 1
    # Exactly one upstream READ: the other seven waited on the gate.
    assert proxy.upstream.stats.by_proc.get("READ", 0) == 1
    assert proxy.stats.coalesced_misses == 7
    assert proxy.stats.block_cache_misses == 1
    assert proxy.stats.block_cache_hits == 7


def test_readahead_accelerates_cold_sequential_reads():
    def timed(depth):
        set_pipeline_overrides(readahead_depth=depth)
        try:
            rig = Rig(metadata=False)
        finally:
            clear_pipeline_overrides()

        def job(env):
            f = yield env.process(rig.mount.open(PATH))
            t0 = env.now
            for b in range(64):
                yield env.process(f.read(b * BS, BS))
            return env.now - t0

        elapsed, _ = rig.run(job(rig.env))
        return elapsed, rig.session.client_proxy

    serial, base = timed(0)
    pipelined, proxy = timed(8)
    stats = proxy.stats
    assert base.stats.prefetch_issued == 0    # depth 0 really disables it
    assert pipelined * 2 < serial
    assert stats.readahead_windows >= 1
    assert stats.prefetch_used > 0
    assert stats.prefetch_accuracy > 0.8
    report = format_pipeline_report(proxy)
    assert f"prefetch used     : {stats.prefetch_used}" in report
    assert "accuracy" in report and "coalesced" in report


def test_failed_prefetch_releases_gates_and_later_reads_succeed():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy
    fh = fh_for(rig)
    fail_offset = 5 * BS
    orig = proxy.upstream.call
    state = {"fails": 0}

    def flaky(request):
        if (request.proc is NfsProc.READ and request.offset == fail_offset
                and state["fails"] == 0):
            state["fails"] += 1

            def boom():
                raise RuntimeError("injected WAN fault")
                yield   # pragma: no cover

            return boom()
        return orig(request)

    proxy.upstream.call = flaky

    def job(env):
        replies = []
        for b in range(4):     # blocks 0,1 miss -> window covers 2..9
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.READ, fh=fh, offset=b * BS, count=BS))
            replies.append(reply)
        return replies

    replies, _ = rig.run(job(rig.env))
    assert all(r.ok for r in replies)
    assert state["fails"] == 1
    assert proxy.stats.prefetch_failed >= 1
    assert not proxy._block_gates             # nothing left wedged

    def later(env):
        return (yield from proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=fail_offset, count=BS)))

    reply, _ = rig.run(later(rig.env))
    assert reply.ok and len(reply.data) == BS


def test_rpc_timeout_on_demand_miss_returns_clean_error():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy
    rig.session.harden_rpc(timeout=0.25, max_retries=1)
    fh = fh_for(rig)
    rig.endpoint.server.crash()

    def job(env):
        return (yield from proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=0, count=BS)))

    reply, _ = rig.run(job(rig.env))
    # The retransmission ladder exhausts and the client gets a clean IO
    # error — no hang, no wedged miss gate.
    assert reply.status is NfsStatus.IO
    assert proxy.stats.degraded_read_errors == 1
    assert not proxy._block_gates


def test_rpc_timeout_during_readahead_releases_gates():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy
    rig.session.harden_rpc(timeout=0.25, max_retries=0)
    fh = fh_for(rig)

    def chaos(env):
        # Crash while the second miss (and its readahead window) is
        # still on the wire: every in-flight fetch times out.
        yield env.timeout(0.01)
        rig.endpoint.server.crash()

    def job(env):
        first = yield from proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=0, count=BS))
        assert first.ok
        rig.env.process(chaos(env))
        second = yield from proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=BS, count=BS))   # opens the window
        assert second.status is NfsStatus.IO
        yield env.timeout(2.0)            # let every prefetch ladder exhaust
        assert not proxy._block_gates     # failed fetches freed their gates
        rig.endpoint.server.restart()
        return (yield from proxy.handle(NfsRequest(
            NfsProc.READ, fh=fh, offset=5 * BS, count=BS)))

    reply, _ = rig.run(job(rig.env))
    assert reply.ok and len(reply.data) == BS
    assert proxy.stats.prefetch_failed >= 1


def test_dirty_eviction_writes_back_before_flush():
    rig = Rig(metadata=False, cache_config=TINY)
    proxy = rig.session.client_proxy
    fh = fh_for(rig)
    server_fs = rig.endpoint.export.fs

    def block(tag):
        return bytes([tag]) * BS

    def job(env):
        for b in range(3):     # third write evicts the LRU dirty block 0
            reply = yield from proxy.handle(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=b * BS, data=block(b + 1)))
            assert reply.ok

    rig.run(job(rig.env))
    # The evicted dirty block reached the server *before* any flush;
    # the two still-cached blocks did not.
    assert server_fs.read(PATH, 0, BS) == block(1)
    assert server_fs.read(PATH, BS, BS) != block(2)
    assert proxy.stats.writebacks == 1
    assert sorted(k[1] for k in proxy.block_cache.dirty_blocks(fh)) == [1, 2]

    rig.run(proxy.flush())
    assert server_fs.read(PATH, BS, BS) == block(2)
    assert server_fs.read(PATH, 2 * BS, BS) == block(3)
    assert not proxy.block_cache.dirty_blocks()
    # The two adjacent dirty blocks went upstream as one merged WRITE.
    assert proxy.stats.merged_write_rpcs == 1
    assert proxy.stats.merged_write_blocks == 2


def test_cold_caches_quiesces_inflight_readahead():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy

    def job(env):
        f = yield env.process(rig.mount.open(PATH))
        for b in range(4):
            yield env.process(f.read(b * BS, BS))
        # The window keeps running ahead of the reader: fetches for
        # blocks past 3 are still on the wire at this instant.
        assert proxy._block_gates
        yield env.process(rig.session.cold_caches())

    rig.run(job(rig.env))
    assert not proxy._block_gates
    assert proxy.block_cache.cached_blocks == 0
