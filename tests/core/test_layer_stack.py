"""The composable proxy stack: composition equivalence against the
hand-wired SecondLevelCache path, lifecycle propagation through every
layer, the aggregated ProxyStats view, uniform reset, stack reports,
and the quiesce/invalidate coverage of file-channel fetch gates."""

import pytest

from repro.core.blockcache import ProxyBlockCache
from repro.core.config import ProxyCacheConfig, ProxyConfig, pipeline_overrides
from repro.core.filecache import ProxyFileCache
from repro.core.layers import (
    AttrPatchLayer,
    BlockCacheLayer,
    DegradedModeLayer,
    FileChannelLayer,
    ProxyLayer,
    ProxyStack,
    ReadaheadLayer,
    UpstreamRpcLayer,
    ZeroMapLayer,
    disable_stack_reports,
    enable_stack_reports,
    format_stack_reports,
    registered_stacks,
)
from repro.core.session import (
    GvfsSession,
    Scenario,
    SecondLevelCache,
    ServerEndpoint,
    direct_file_channel,
)
from repro.net.ssh import ScpTransfer, SshTunnel
from repro.net.topology import Testbed
from repro.nfs.protocol import FileHandle, NfsProc, NfsReply, NfsRequest, NfsStatus
from repro.nfs.rpc import RpcClient
from repro.sim import Environment
from repro.vm.image import VmConfig, VmImage
from tests.core.harness import SMALL_CACHE, Rig

BS = 8192
PATH = "/images/golden/disk.vmdk"


# --------------------------------------------------------------------------
# Composition equivalence: a hand-composed two-level ProxyStack must be
# byte- and time-identical to the SecondLevelCache wrapper.
# --------------------------------------------------------------------------

class ComposedSecondLevel:
    """The SecondLevelCache wiring, but with the proxy built as a raw
    ProxyStack from an explicit layer list (no GvfsProxy involved)."""

    def __init__(self, testbed, endpoint, cache_config,
                 name="second-level"):
        env = testbed.env
        self.env = env
        self.testbed = testbed
        self.endpoint = endpoint
        self.host = testbed.lan_server
        tunnel_out = SshTunnel(env, testbed.lan_server_route(),
                               name=f"{name}.out")
        tunnel_back = SshTunnel(env, testbed.lan_server_route_back(),
                                name=f"{name}.back")
        upstream = RpcClient(env, endpoint.proxy, tunnel_out, tunnel_back,
                             name=f"{name}.rpc")
        self.block_cache = ProxyBlockCache(env, self.host.local, cache_config,
                                           name=f"{name}.blocks")
        file_cache = ProxyFileCache(env, self.host.local,
                                    name=f"{name}.files")
        scp = ScpTransfer(env, testbed.lan_server_route_back(),
                          name=f"{name}.scp")
        self.channel = direct_file_channel(env, endpoint, self.host,
                                           file_cache, scp)
        self.proxy = ProxyStack(
            env, upstream,
            ProxyConfig(name=name, cache=cache_config, metadata=True,
                        **pipeline_overrides()),
            [AttrPatchLayer(), ZeroMapLayer(),
             FileChannelLayer(self.channel),
             BlockCacheLayer(self.block_cache), ReadaheadLayer(),
             DegradedModeLayer(), UpstreamRpcLayer()])


def _two_level_universe(second_level_cls):
    testbed = Testbed(Environment(), n_compute=2)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2, disk_gb=0.01,
                                    seed=47))
    second = second_level_cls(testbed, endpoint, SMALL_CACHE)
    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i,
                                  cache_config=SMALL_CACHE, via=second)
                for i in range(2)]
    return testbed, image, second, sessions


def _drive_two_level(testbed, sessions):
    """A workload spanning both compute nodes: cold reads, shared-block
    hits, absorbed writes, and a flush through both levels."""
    trace = []

    def job(env):
        f0 = yield env.process(sessions[0].mount.open(PATH))
        for b in (0, 1, 2, 7):
            data = yield env.process(f0.read(b * BS, BS))
            trace.append(("s0-read", b, data, env.now))
        f1 = yield env.process(sessions[1].mount.open(PATH))
        for b in (0, 2, 9):
            data = yield env.process(f1.read(b * BS, BS))
            trace.append(("s1-read", b, data, env.now))
        yield env.process(f0.write(3 * BS, bytes([7]) * BS))
        trace.append(("s0-write", 3, None, env.now))
        yield env.process(sessions[0].flush())
        trace.append(("s0-flush", None, None, env.now))

    testbed.env.process(job(testbed.env))
    testbed.env.run()
    return trace


def test_composed_two_level_stack_matches_second_level_cache():
    t_ref, img_ref, second_ref, sess_ref = _two_level_universe(
        SecondLevelCache)
    t_new, img_new, second_new, sess_new = _two_level_universe(
        ComposedSecondLevel)

    trace_ref = _drive_two_level(t_ref, sess_ref)
    trace_new = _drive_two_level(t_new, sess_new)

    # Byte- and simulated-time-identical, step for step.
    assert trace_new == trace_ref
    assert t_new.env.now == t_ref.env.now

    # The raw composed stack and the wrapper agree on every counter of
    # both proxy levels.
    for new, ref in ((second_new.proxy, second_ref.proxy),
                     (sess_new[0].client_proxy, sess_ref[0].client_proxy),
                     (sess_new[1].client_proxy, sess_ref[1].client_proxy)):
        assert new.stats_snapshot() == ref.stats_snapshot()
    assert (second_new.block_cache.cached_blocks
            == second_ref.block_cache.cached_blocks)


# --------------------------------------------------------------------------
# Lifecycle propagation order
# --------------------------------------------------------------------------

class RecordingLayer(ProxyLayer):
    """Pass-through layer that records every hook invocation."""

    def __init__(self, name, log, reply=None):
        self.ROLE = name
        super().__init__()
        self.name = name
        self.log = log
        self.reply = reply

    def handle(self, request):
        self.log.append((self.name, "handle"))
        if self.reply is not None:
            return self.reply
            yield  # pragma: no cover
        return (yield from self.next.handle(request))

    def flush(self):
        self.log.append((self.name, "flush"))
        return
        yield  # pragma: no cover

    def crash(self):
        self.log.append((self.name, "crash"))

    def recover(self):
        self.log.append((self.name, "recover"))
        return [self.name]
        yield  # pragma: no cover

    def quiesce(self):
        self.log.append((self.name, "quiesce"))
        return
        yield  # pragma: no cover

    def invalidate(self):
        self.log.append((self.name, "invalidate"))


def _recording_stack():
    env = Environment()
    log = []
    reply = NfsReply(NfsProc.GETATTR, NfsStatus.OK)
    layers = [RecordingLayer("top", log), RecordingLayer("mid", log),
              RecordingLayer("bottom", log, reply=reply)]
    stack = ProxyStack(env, upstream=None, config=ProxyConfig(name="t"),
                       layers=layers)
    return env, log, stack, reply


def _run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield from gen

    env.process(wrapper(env))
    env.run()
    return box.get("value")


def test_handle_flows_top_down_through_every_layer():
    env, log, stack, reply = _recording_stack()
    got = _run(env, stack.handle(NfsRequest(NfsProc.GETATTR)))
    assert got is reply
    assert log == [("top", "handle"), ("mid", "handle"),
                   ("bottom", "handle")]
    assert stack.stats.requests == 1


def test_lifecycle_hooks_propagate_bottom_up_through_every_layer():
    env, log, stack, _ = _recording_stack()
    bottom_up = [("bottom", None), ("mid", None), ("top", None)]

    stack.crash()
    assert log == [(n, "crash") for n, _ in bottom_up]

    log.clear()
    _run(env, stack.flush())
    assert log == [(n, "flush") for n, _ in bottom_up]

    log.clear()
    recovered = _run(env, stack.recover())
    assert log == [(n, "recover") for n, _ in bottom_up]
    assert recovered == ["bottom", "mid", "top"]   # results concatenated

    log.clear()
    _run(env, stack.quiesce())
    assert log == [(n, "quiesce") for n, _ in bottom_up]

    log.clear()
    stack.invalidate_caches()
    assert log == [(n, "invalidate") for n, _ in bottom_up]


def test_invalidate_guard_vetoes_before_any_layer_mutates():
    env, log, stack, _ = _recording_stack()
    stack.layers[0].invalidate_guard = lambda: "top layer is busy"
    with pytest.raises(RuntimeError, match="top layer is busy"):
        stack.invalidate_caches()
    assert log == []          # no layer was touched


# --------------------------------------------------------------------------
# The aggregated ProxyStats view
# --------------------------------------------------------------------------

def test_stats_view_routes_reads_and_writes_to_owning_layers():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy

    proxy.stats.prefetch_failed += 1
    assert proxy.layer("readahead").stats.prefetch_failed == 1

    # absorbed_writes is owned by both the file-channel and block-cache
    # layers: reads sum, writes land on the first owner.
    proxy.layer("file-channel").stats.absorbed_writes = 2
    proxy.layer("block-cache").stats.absorbed_writes = 3
    assert proxy.stats.absorbed_writes == 5
    proxy.stats.absorbed_writes = 10
    assert proxy.layer("file-channel").stats.absorbed_writes == 7
    assert proxy.layer("block-cache").stats.absorbed_writes == 3
    assert proxy.stats.absorbed_writes == 10

    proxy.stats.reset()
    assert proxy.stats.absorbed_writes == 0
    assert proxy.stats.prefetch_failed == 0

    with pytest.raises(AttributeError):
        proxy.stats.no_such_counter
    with pytest.raises(AttributeError):
        proxy.stats.no_such_counter = 1


def test_cacheless_stack_still_exposes_every_legacy_counter():
    from repro.core.layers import LEGACY_COUNTERS
    rig = Rig(metadata=False)
    server_proxy = rig.endpoint.proxy     # forwarding-only stack
    for name in LEGACY_COUNTERS:
        assert isinstance(getattr(server_proxy.stats, name), int)
    # Cache counters have no owning layer here: they read as zero and
    # stay writable (middleware compatibility).
    assert server_proxy.stats.block_cache_misses == 0
    server_proxy.stats.prefetch_failed += 1
    assert server_proxy.stats.prefetch_failed == 1


# --------------------------------------------------------------------------
# Uniform reset and stack reports
# --------------------------------------------------------------------------

def test_stack_reset_zeroes_every_layer_and_component():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy

    def job(env):
        f = yield env.process(rig.mount.open(PATH))
        for b in range(4):
            yield env.process(f.read(b * BS, BS))
        yield env.process(f.write(0, b"x" * BS))

    rig.run(job(rig.env))
    assert proxy.stats.requests > 0
    assert proxy.block_cache.hits + proxy.block_cache.misses > 0

    proxy.reset()
    assert proxy.stats.requests == 0
    assert proxy.stats.forwarded == 0
    assert proxy.stats.block_cache_misses == 0
    assert proxy.block_cache.hits == 0
    assert proxy.block_cache.misses == 0
    assert proxy.channel.fetches == 0


def test_stack_report_registry_and_format():
    enable_stack_reports()
    try:
        rig = Rig(metadata=False)
        proxy = rig.session.client_proxy
        assert proxy in registered_stacks()

        def job(env):
            f = yield env.process(rig.mount.open(PATH))
            yield env.process(f.read(0, BS))

        rig.run(job(rig.env))
        text = format_stack_reports()
    finally:
        disable_stack_reports()
    assert ".client-proxy" in text
    assert "block-cache" in text and "upstream-rpc" in text
    # Registry off: new stacks are not recorded.
    rig2 = Rig(metadata=False)
    assert rig2.session.client_proxy not in registered_stacks()


def test_stats_snapshot_groups_counters_by_layer():
    rig = Rig(metadata=False)
    proxy = rig.session.client_proxy

    def job(env):
        f = yield env.process(rig.mount.open(PATH))
        yield env.process(f.read(0, BS))

    rig.run(job(rig.env))
    snap = proxy.stats_snapshot()
    assert snap["front"]["requests"] == proxy.stats.requests
    assert snap["block-cache"]["block_cache_misses"] >= 1
    assert snap["upstream-rpc"]["forwarded"] == proxy.stats.forwarded


# --------------------------------------------------------------------------
# Gate symmetry: quiesce/invalidate cover file-channel fetches too
# --------------------------------------------------------------------------

def _nonzero_block(rig):
    """First non-zero block of mem.vmss — a read there must use the
    file channel (the zero filter would short-circuit a zero block)."""
    mem = rig.image.memory_inode.data
    return next(i for i in range(mem.n_chunks()) if not mem.chunk_is_zero(i))


def test_cold_caches_waits_for_inflight_file_channel_fetch():
    rig = Rig()
    rig.image.generate_metadata()         # mem.vmss routes via the channel
    proxy = rig.session.client_proxy
    fh = FileHandle("images", rig.image.memory_inode.fileid)
    block = _nonzero_block(rig)

    def job(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        reader = env.process(f.read(block * BS, BS))
        while not proxy._fetching:        # let the channel fetch start
            yield env.timeout(0.0005)
        yield env.process(rig.session.cold_caches())
        yield reader

    rig.run(job(rig.env))
    # The fetch was waited out (quiesce) and its install dropped
    # (invalidate): the cache really is cold, nothing repopulated it.
    assert proxy.stats.channel_fetches == 1
    assert not proxy._fetching
    assert fh not in proxy.channel.file_cache


def test_invalidate_refuses_while_file_fetch_in_flight():
    rig = Rig()
    rig.image.generate_metadata()
    proxy = rig.session.client_proxy
    block = _nonzero_block(rig)

    def job(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        reader = env.process(f.read(block * BS, BS))
        while not proxy._fetching:
            yield env.timeout(0.0005)
        with pytest.raises(RuntimeError, match="quiesce first"):
            proxy.invalidate_caches()
        yield reader

    rig.run(job(rig.env))
