"""Property-based tests on cache and overlay invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.blockcache import ProxyBlockCache
from repro.core.config import ProxyCacheConfig
from repro.nfs.buffercache import BufferCache
from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem
from repro.vm.redolog import RedoLog
from tests.vm.test_monitor_redolog import FakeFile


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


# -- ProxyBlockCache: the cache is a transparent block store --------------------

block_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),    # file index
              st.integers(min_value=0, max_value=40),   # block index
              st.binary(min_size=1, max_size=64)),      # content seed
    min_size=1, max_size=40)


@given(block_ops)
@settings(max_examples=40, deadline=None)
def test_blockcache_never_returns_wrong_data(ops):
    """Whatever was inserted last under a key is what lookup returns —
    or a miss; never stale or foreign data."""
    env = Environment()
    cache = ProxyBlockCache(
        env, LocalFileSystem(env),
        ProxyCacheConfig(capacity_bytes=16 * 8192, n_banks=2,
                         associativity=2, block_size=8192))
    model = {}
    for file_index, block, content in ops:
        key = (FileHandle("fs", file_index), block)
        data = bytes(content) * (8192 // max(len(content), 1))
        data = data[:8192]
        run(env, cache.insert(key, data))
        model[key] = data
    for key, expected in model.items():
        hit = run(env, cache.lookup(key))
        if hit is not None:
            assert hit.data == expected


@given(block_ops)
@settings(max_examples=25, deadline=None)
def test_blockcache_capacity_invariant(ops):
    """The cache never holds more frames than its geometry allows."""
    env = Environment()
    config = ProxyCacheConfig(capacity_bytes=16 * 8192, n_banks=2,
                              associativity=2, block_size=8192)
    cache = ProxyBlockCache(env, LocalFileSystem(env), config)
    for file_index, block, content in ops:
        run(env, cache.insert((FileHandle("fs", file_index), block),
                              bytes(content)[:8192]))
    assert cache.cached_blocks <= config.total_frames
    # Every indexed key is findable where the map says it is.
    for key, (bank, frame) in cache._where.items():
        assert cache._banks[bank].keys[frame] == key


# -- BufferCache vs a dict+LRU reference model -----------------------------------

cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("get"), st.integers(0, 15)),
        st.tuples(st.just("put"), st.integers(0, 15)),
        st.tuples(st.just("dirty"), st.integers(0, 15)),
        st.tuples(st.just("clean"), st.integers(0, 15)),
    ),
    max_size=60)


@given(cache_ops)
@settings(max_examples=60, deadline=None)
def test_buffercache_matches_reference_model(ops):
    fh = FileHandle("f", 1)
    cache = BufferCache(capacity_bytes=4 * 8192, block_size=8192)  # 4 blocks
    reference = {}   # key -> data (unbounded; cache may evict clean)
    dirty = set()
    for op, idx in ops:
        key = (fh, idx)
        data = bytes([idx % 251 + 1]) * 8192
        if op == "get":
            got = cache.get(key)
            if got is not None:
                assert got == reference[key]
        elif op == "put":
            cache.put_clean(key, data)
            if key not in dirty:          # put_clean must not clobber dirty
                reference[key] = data
        elif op == "dirty":
            cache.put_dirty(key, data)
            reference[key] = data
            dirty.add(key)
        elif op == "clean":
            cache.mark_clean(key)
            dirty.discard(key)
    # Dirty blocks are never evicted.
    for key in dirty:
        assert cache.peek(key) == reference[key]
    assert cache.dirty_blocks == len(dirty)


# -- RedoLog equals a flat overlay reference --------------------------------------

overlay_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1500),
              st.binary(min_size=1, max_size=400)),
    max_size=15)


@given(overlay_ops, st.integers(0, 1500), st.integers(0, 600))
@settings(max_examples=60, deadline=None)
def test_redolog_equals_flat_overlay(writes, read_off, read_len):
    env = Environment()
    base_content = bytes(range(256)) * 8  # 2048 bytes
    base = FakeFile(env, base_content)
    redo = RedoLog(env, base, FakeFile(env), block_size=256)
    reference = bytearray(base_content)
    for offset, data in writes:
        run(env, redo.write(offset, data))
        if offset + len(data) > len(reference):
            reference.extend(bytes(offset + len(data) - len(reference)))
        reference[offset:offset + len(data)] = data
    got = run(env, redo.read(read_off, read_len))
    # The overlay view within the base's extent must match; reads beyond
    # the original base size may be short (EOF semantics on the base).
    expected = bytes(reference[read_off:read_off + read_len])
    assert expected.startswith(got) or got == expected
    if read_off + read_len <= len(base_content):
        assert got == expected
    # The base file is never modified.
    assert bytes(base.buf) == base_content


# -- Engine determinism -------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(1, 50), st.integers(0, 5)),
                min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_engine_schedule_is_deterministic(jobs):
    """Two identical runs produce identical event orders and clocks."""

    def execute():
        env = Environment()
        log = []

        def worker(env, name, delay, hops):
            for h in range(hops + 1):
                yield env.timeout(delay)
                log.append((name, env.now))

        for i, (delay, hops) in enumerate(jobs):
            env.process(worker(env, i, delay, hops))
        env.run()
        return log, env.now

    first = execute()
    second = execute()
    assert first == second
