"""Unit tests for link and route timing."""

import pytest

from repro.net.link import HEADER_BYTES, Link, Route, duplex
from repro.sim import Environment


def transmit_and_time(env, carrier, nbytes):
    done = {}

    def proc(env):
        yield env.process(carrier.transmit(nbytes))
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    return done["t"]


def test_single_message_time_is_serialization_plus_latency():
    env = Environment()
    link = Link(env, latency=0.010, bandwidth=1e6)
    t = transmit_and_time(env, link, 10_000)
    assert t == pytest.approx(0.010 + (10_000 + HEADER_BYTES) / 1e6)


def test_zero_byte_message_still_pays_header_and_latency():
    env = Environment()
    link = Link(env, latency=0.005, bandwidth=1e6)
    t = transmit_and_time(env, link, 0)
    assert t == pytest.approx(0.005 + HEADER_BYTES / 1e6)


def test_messages_queue_on_shared_link():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=1e3)  # 1 KB/s: serialization dominates
    times = []

    def sender(env, n):
        yield env.process(link.transmit(n))
        times.append(env.now)

    env.process(sender(env, 1000 - HEADER_BYTES))
    env.process(sender(env, 1000 - HEADER_BYTES))
    env.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_latency_pipelines_across_messages():
    """Propagation of message 1 overlaps serialization of message 2."""
    env = Environment()
    link = Link(env, latency=10.0, bandwidth=1e3)
    times = []

    def sender(env, n):
        yield env.process(link.transmit(n))
        times.append(env.now)

    env.process(sender(env, 1000 - HEADER_BYTES))
    env.process(sender(env, 1000 - HEADER_BYTES))
    env.run()
    # msg1 done at 1 + 10 = 11; msg2 serializes [1,2], arrives 12 (not 22).
    assert times == [pytest.approx(11.0), pytest.approx(12.0)]


def test_negative_size_rejected():
    env = Environment()
    link = Link(env, latency=0, bandwidth=1e6)

    def proc(env):
        yield env.process(link.transmit(-1))

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()


def test_invalid_link_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, latency=-1, bandwidth=1e6)
    with pytest.raises(ValueError):
        Link(env, latency=0, bandwidth=0)


def test_link_statistics():
    env = Environment()
    link = Link(env, latency=0.001, bandwidth=1e6)

    def proc(env):
        yield env.process(link.transmit(5000))

    env.process(proc(env))
    env.run()
    assert link.bytes_sent == 5000
    assert link.messages_sent == 1
    assert link.busy_time == pytest.approx((5000 + HEADER_BYTES) / 1e6)


def test_route_sums_hops():
    env = Environment()
    a = Link(env, latency=0.001, bandwidth=1e6, name="a")
    b = Link(env, latency=0.002, bandwidth=2e6, name="b")
    route = Route([a, b])
    assert route.latency == pytest.approx(0.003)
    assert route.bottleneck_bandwidth == 1e6
    t = transmit_and_time(env, route, 10_000)
    assert t == pytest.approx(route.unloaded_transfer_time(10_000))


def test_route_requires_links():
    with pytest.raises(ValueError):
        Route([])


def test_duplex_directions_are_independent():
    env = Environment()
    fwd, rev = duplex(env, latency=0.0, bandwidth=1e3, name="d")
    times = {}

    def sender(env, link, key):
        yield env.process(link.transmit(1000 - HEADER_BYTES))
        times[key] = env.now

    env.process(sender(env, fwd, "fwd"))
    env.process(sender(env, rev, "rev"))
    env.run()
    # No contention between directions: both finish at 1 s.
    assert times == {"fwd": pytest.approx(1.0), "rev": pytest.approx(1.0)}


def test_contention_on_shared_hop_in_routes():
    env = Environment()
    shared = Link(env, latency=0.0, bandwidth=1e3, name="shared")
    a = Link(env, latency=0.0, bandwidth=1e9, name="a")
    b = Link(env, latency=0.0, bandwidth=1e9, name="b")
    r1 = Route([a, shared])
    r2 = Route([b, shared])
    times = []

    def sender(env, route):
        yield env.process(route.transmit(1000 - HEADER_BYTES))
        times.append(env.now)

    env.process(sender(env, r1))
    env.process(sender(env, r2))
    env.run()
    times.sort()
    assert times[0] == pytest.approx(1.0, rel=1e-3)
    assert times[1] == pytest.approx(2.0, rel=1e-3)
