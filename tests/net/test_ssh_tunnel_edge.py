"""Additional SSH tunnel and transfer edge-case tests."""

import pytest

from repro.net.link import Link, Route
from repro.net.ssh import ScpTransfer, SshTunnel
from repro.sim import Environment


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    env.process(wrapper(env))
    env.run()
    return box


def test_concurrent_first_use_connects_once():
    """Two messages racing on an unestablished tunnel: the handshake is
    idempotent (connect() checks the flag) and both get through."""
    env = Environment()
    route = Route([Link(env, 0.010, 1e6)])
    tun = SshTunnel(env, route, pre_established=False)
    times = []

    def sender(env):
        yield env.process(tun.transmit(100))
        times.append(env.now)

    env.process(sender(env))
    env.process(sender(env))
    env.run()
    assert len(times) == 2
    assert tun.established


def test_tunnel_counts_bytes():
    env = Environment()
    tun = SshTunnel(env, Route([Link(env, 0.001, 1e6)]))
    run(env, tun.transmit(5000))
    assert tun.bytes_tunnelled == 5000


def test_scp_zero_latency_route():
    """A zero-latency route must not divide by zero in the window cap."""
    env = Environment()
    scp = ScpTransfer(env, Route([Link(env, 0.0, 1e6)]))
    assert scp.effective_bandwidth == pytest.approx(1e6)
    box = run(env, scp.transfer(100_000))
    assert box["t"] > 0


def test_scp_window_parameter_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ScpTransfer(env, Route([Link(env, 0.01, 1e6)]), tcp_window=0)


def test_scp_larger_window_is_faster_on_wan():
    def t(window):
        env = Environment()
        scp = ScpTransfer(env, Route([Link(env, 0.019, 30e6)]),
                          tcp_window=window)
        return run(env, scp.transfer(4 * 1024 * 1024))["t"]

    assert t(256 * 1024) < t(64 * 1024) / 2
