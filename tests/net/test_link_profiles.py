"""Per-hop link profiles: named calibrations for added hosts and
cascade levels (rack vs site vs WAN)."""

import pytest

from repro.net.topology import (
    LAN_2003,
    LINK_PROFILES,
    NetworkConditions,
    RACK_2003,
    SITE_2003,
    WAN_2003,
    make_paper_testbed,
    resolve_profile,
)


def test_profile_table_contents():
    assert LINK_PROFILES == {"lan": LAN_2003, "rack": RACK_2003,
                             "site": SITE_2003, "wan": WAN_2003}
    # Rack is the fast local hop; site adds delay at LAN port speed.
    assert RACK_2003.bandwidth > LAN_2003.bandwidth
    assert SITE_2003.latency > LAN_2003.latency
    assert SITE_2003.bandwidth == LAN_2003.bandwidth


def test_resolve_profile_by_name_and_passthrough():
    assert resolve_profile("rack") is RACK_2003
    custom = NetworkConditions(latency=0.002, bandwidth=5e6)
    assert resolve_profile(custom) is custom


def test_resolve_profile_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_profile("dialup")
    with pytest.raises(ValueError):
        resolve_profile(None)


def test_add_host_default_uses_lan_conditions():
    testbed = make_paper_testbed()
    host = testbed.add_host("cache-a")
    route = testbed.route(host, testbed.lan_server)
    assert route.links[0].latency == LAN_2003.latency
    assert route.links[0].bandwidth == LAN_2003.bandwidth


def test_add_host_with_profile_conditions():
    testbed = make_paper_testbed()
    rack = testbed.add_host("rack-cache", conditions=RACK_2003)
    site = testbed.add_host("site-cache", conditions=SITE_2003)
    r_rack = testbed.route(testbed.compute[0], rack)
    r_site = testbed.route(testbed.compute[0], site)
    # The destination's access (down) link carries its own calibration;
    # the source keeps the plain LAN access link.
    assert r_rack.links[-1].bandwidth == RACK_2003.bandwidth
    assert r_rack.links[-1].latency == RACK_2003.latency
    assert r_site.links[-1].latency == SITE_2003.latency
    assert r_rack.links[0].bandwidth == LAN_2003.bandwidth


def test_cascade_spec_profile_threads_to_host_link():
    from repro.core.session import (CascadeLevelSpec, ServerEndpoint,
                                    build_cascade)
    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    cascade = build_cascade(testbed, endpoint, levels=[
        CascadeLevelSpec(profile="rack", name="rack-l2"),
        CascadeLevelSpec(profile="site", name="site-l3"),
    ])
    assert cascade.depth == 3
    rack_host = cascade.levels[0].host
    site_host = cascade.levels[1].host
    assert rack_host is not testbed.lan_server
    rack_link = testbed.route(testbed.compute[0], rack_host).links[-1]
    site_link = testbed.route(rack_host, site_host).links[-1]
    assert rack_link.bandwidth == RACK_2003.bandwidth
    assert site_link.latency == SITE_2003.latency


def test_cascade_spec_profile_conflicts_with_pinned_host():
    from repro.core.session import (CascadeLevelSpec, ServerEndpoint,
                                    build_cascade)
    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    with pytest.raises(ValueError):
        build_cascade(testbed, endpoint, levels=[
            CascadeLevelSpec(host=testbed.lan_server, profile="rack")])


def test_cascade_profiled_level_still_serves_traffic():
    """A rack-profiled cascade level carries a session end to end."""
    from repro.core.session import (CascadeLevelSpec, GvfsSession, Scenario,
                                    ServerEndpoint, build_cascade)
    testbed = make_paper_testbed()
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    fs.mkdir("/data", parents=True)
    fs.create("/data/blob", size=256 * 1024)
    cascade = build_cascade(testbed, endpoint, levels=[
        CascadeLevelSpec(profile="rack")])
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, via=cascade,
                                metadata=False)
    got = {}

    def driver(env):
        f = yield env.process(session.mount.open("/data/blob"))
        data = yield env.process(f.read(0, 64 * 1024))
        got["n"] = len(data)

    env.process(driver(env))
    env.run()
    assert got["n"] == 64 * 1024
    snap = cascade.levels[0].proxy.stats_snapshot()
    assert any(counters.get("forwarded", 0) or counters.get("requests", 0)
               for counters in snap.values() if isinstance(counters, dict))
