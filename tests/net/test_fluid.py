"""Fluid-flow link mode: FIFO equivalence, bulk transfers, fallbacks."""

import pytest

from repro.net.link import HEADER_BYTES, Link, LinkMode, Route, duplex
from repro.sim import Environment


def _send(env, carrier, nbytes, times, **kw):
    def proc(env):
        if kw:
            yield from carrier.transmit_bulk(nbytes, **kw)
        else:
            yield env.process(carrier.transmit(nbytes))
        times.append(env.now)
    return env.process(proc(env))


def _run_traffic(mode, sends):
    """Run a message pattern on a 2-hop route; return completion times.

    ``sends`` is a list of ``(start_delay, nbytes)`` pairs.
    """
    env = Environment()
    a = Link(env, latency=0.010, bandwidth=1e6, name="a", mode=mode)
    b = Link(env, latency=0.002, bandwidth=4e6, name="b", mode=mode)
    route = Route([a, b])
    times = []

    def sender(env, delay, nbytes):
        yield env.timeout(delay)
        yield env.process(route.transmit(nbytes))
        times.append(env.now)

    for delay, nbytes in sends:
        env.process(sender(env, delay, nbytes))
    env.run()
    return times, env.events_scheduled


TRAFFIC = [(0.0, 8192), (0.0, 8192), (0.001, 32768), (0.5, 100),
           (0.5, 8192), (0.5001, 500)]


def test_fluid_matches_exact_for_fifo_traffic():
    exact_times, exact_events = _run_traffic(LinkMode.EXACT, TRAFFIC)
    fluid_times, fluid_events = _run_traffic(LinkMode.FLUID, TRAFFIC)
    assert fluid_times == exact_times          # bit-identical, not approx
    assert fluid_events < exact_events         # and strictly cheaper


def test_fluid_single_message_time():
    env = Environment()
    link = Link(env, latency=0.010, bandwidth=1e6, mode=LinkMode.FLUID)
    times = []
    _send(env, link, 10_000, times)
    env.run()
    assert times == [pytest.approx(0.010 + (10_000 + HEADER_BYTES) / 1e6)]


def test_fluid_messages_queue_in_arrival_order():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=1e3, mode=LinkMode.FLUID)
    times = []
    _send(env, link, 1000 - HEADER_BYTES, times)
    _send(env, link, 1000 - HEADER_BYTES, times)
    env.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_fluid_link_statistics_match_exact_semantics():
    env = Environment()
    link = Link(env, latency=0.001, bandwidth=1e6, mode=LinkMode.FLUID)
    _send(env, link, 5000, [])
    env.run()
    assert link.bytes_sent == 5000
    assert link.messages_sent == 1
    assert link.busy_time == pytest.approx((5000 + HEADER_BYTES) / 1e6)


def test_route_mode_requires_every_hop_fluid():
    env = Environment()
    f = Link(env, latency=0, bandwidth=1e6, mode=LinkMode.FLUID)
    e = Link(env, latency=0, bandwidth=1e6)
    assert Route([f, f]).mode is LinkMode.FLUID
    assert Route([f, e]).mode is LinkMode.EXACT


def test_duplex_propagates_mode():
    env = Environment()
    fwd, rev = duplex(env, latency=0, bandwidth=1e6, mode=LinkMode.FLUID)
    assert fwd.mode is LinkMode.FLUID and rev.mode is LinkMode.FLUID


# ------------------------------------------------------------ transmit_bulk

def test_bulk_pipelines_across_hops():
    env = Environment()
    a = Link(env, latency=0.5, bandwidth=1e6, name="a", mode=LinkMode.FLUID)
    b = Link(env, latency=0.5, bandwidth=2e6, name="b", mode=LinkMode.FLUID)
    route = Route([a, b])
    times = []
    _send(env, route, 10_000_000, times, n_messages=1)
    env.run()
    # Chunks pipeline: total = slowest hop's serialization + both
    # latencies, NOT the sum of per-hop serializations.
    wire = 10_000_000 + HEADER_BYTES
    assert times == [pytest.approx(wire / 1e6 + 1.0)]


def test_bulk_pace_caps_throughput():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=100e6, mode=LinkMode.FLUID)
    route = Route([link])
    times = []
    _send(env, route, 10_000_000, times, pace=1e6)
    env.run()
    # The sender's pace (1 MB/s), not the 100 MB/s wire, dominates.
    assert times == [pytest.approx(10.0)]


def test_bulk_charges_per_chunk_headers():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=1e6, mode=LinkMode.FLUID)
    route = Route([link])
    times = []
    _send(env, route, 1_000_000, times, n_messages=100)
    env.run()
    assert times == [pytest.approx((1_000_000 + 100 * HEADER_BYTES) / 1e6)]
    assert link.messages_sent == 100
    assert link.bytes_sent == 1_000_000


def test_bulk_streams_share_bottleneck_in_arrival_order():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=1e6, mode=LinkMode.FLUID)
    route = Route([link])
    times = []
    _send(env, route, 1_000_000 - HEADER_BYTES, times)
    _send(env, route, 1_000_000 - HEADER_BYTES, times)
    env.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_bulk_falls_back_to_exact_on_mixed_route():
    env = Environment()
    f = Link(env, latency=0.0, bandwidth=1e6, mode=LinkMode.FLUID)
    e = Link(env, latency=0.0, bandwidth=1e6)
    route = Route([f, e])
    times = []
    _send(env, route, 10_000, times, n_messages=4)
    env.run()
    # Store-and-forward across both hops, single message semantics.
    assert times == [pytest.approx(2 * (10_000 + HEADER_BYTES) / 1e6)]


def test_bulk_falls_back_when_a_hop_is_down():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=1e6, mode=LinkMode.FLUID)
    route = Route([link])
    link.fail()
    times = []
    _send(env, route, 10_000, times)

    def repair(env):
        yield env.timeout(3.0)
        link.restore()

    env.process(repair(env))
    env.run()
    # The transfer stalls until restore, then completes on the wire.
    assert times == [pytest.approx(3.0 + (10_000 + HEADER_BYTES) / 1e6)]


def test_fluid_transmit_stalls_on_failed_link():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=1e6, mode=LinkMode.FLUID)
    link.fail()
    times = []
    _send(env, link, 1000, times)

    def repair(env):
        yield env.timeout(2.0)
        link.restore()

    env.process(repair(env))
    env.run()
    assert times == [pytest.approx(2.0 + (1000 + HEADER_BYTES) / 1e6)]


def test_bulk_rejects_negative_size():
    env = Environment()
    link = Link(env, latency=0.0, bandwidth=1e6, mode=LinkMode.FLUID)
    route = Route([link])

    def proc(env):
        yield from route.transmit_bulk(-5)

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()


# -- outage history demotes the fast path ----------------------------------

def test_outage_history_permanently_demotes_fluid_link():
    env = Environment()
    link = Link(env, latency=0.010, bandwidth=1e6, mode=LinkMode.FLUID)
    assert link.fluid_ready
    link.fail()
    assert not link.fluid_ready
    link.restore()
    # Recovery restores traffic, not the fluid fast path: one outage
    # means the exact store-and-forward model from here on.
    assert not link.fluid_ready
    assert link.mode is LinkMode.FLUID       # configuration unchanged


def test_post_outage_traffic_matches_exact_semantics():
    def outage_times(mode):
        env = Environment()
        link = Link(env, latency=0.010, bandwidth=1e6, mode=mode)
        link.fail()
        link.restore()
        times = []
        for delay, nbytes in [(0.0, 8192), (0.0, 8192), (0.001, 32768)]:
            def sender(env, delay=delay, nbytes=nbytes):
                yield env.timeout(delay)
                yield env.process(link.transmit(nbytes))
                times.append(env.now)
            env.process(sender(env))
        env.run()
        return times

    assert outage_times(LinkMode.FLUID) == outage_times(LinkMode.EXACT)


def test_bulk_falls_back_after_an_outage_heals():
    def bulk_time(outage):
        env = Environment()
        a = Link(env, latency=0.010, bandwidth=1e6, mode=LinkMode.FLUID)
        if outage:
            a.fail()
            a.restore()
        b = Link(env, latency=0.002, bandwidth=4e6,
                 mode=LinkMode.FLUID if outage else LinkMode.EXACT)
        route = Route([a, b])
        times = []
        _send(env, route, 100_000, times, n_messages=4)
        env.run()
        return times

    # A healed-but-scarred hop forces the same exact store-and-forward
    # path a mixed fluid/exact route takes.
    assert bulk_time(outage=True) == bulk_time(outage=False)
