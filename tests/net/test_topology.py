"""Tests for hosts and the paper testbed wiring."""

import pytest

from repro.net.topology import LAN_2003, WAN_2003, Host, Testbed, make_paper_testbed
from repro.sim import Environment


def test_host_compute_holds_cpu():
    env = Environment()
    host = Host(env, "h", cpus=1, cpu_speed=2.0)
    times = []

    def proc(env):
        yield host.compute(4.0)  # scaled by speed 2.0 -> 2 s
        times.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert times == [pytest.approx(2.0), pytest.approx(4.0)]


def test_host_multi_cpu_runs_parallel():
    env = Environment()
    host = Host(env, "h", cpus=2)
    times = []

    def proc(env):
        yield host.compute(3.0)
        times.append(env.now)

    for _ in range(2):
        env.process(proc(env))
    env.run()
    assert times == [pytest.approx(3.0), pytest.approx(3.0)]


def test_testbed_routes_have_expected_latency():
    tb = make_paper_testbed()
    lan = tb.lan_route()
    wan = tb.wan_route()
    assert lan.latency == pytest.approx(2 * LAN_2003.latency)
    assert wan.latency == pytest.approx(2 * LAN_2003.latency + WAN_2003.latency)
    # WAN RTT lands near the Abilene-era ~38 ms.
    assert 0.030 < 2 * wan.latency < 0.045


def test_testbed_wan_bottleneck_is_access_link():
    tb = make_paper_testbed()
    assert tb.wan_route().bottleneck_bandwidth == pytest.approx(LAN_2003.bandwidth)


def test_testbed_parallel_compute_nodes_share_wan_segment():
    tb = make_paper_testbed(n_compute=8)
    assert len(tb.compute) == 8
    fwd_links = {id(l) for i in range(8) for l in [tb.wan_route(i).links[1]]}
    assert len(fwd_links) == 1  # the shared Abilene hop


def test_testbed_routes_back_use_reverse_direction():
    tb = make_paper_testbed()
    fwd = tb.wan_route().links[1]
    rev = tb.wan_route_back().links[1]
    assert fwd is tb.wan_segment[0]
    assert rev is tb.wan_segment[1]


def test_lan_server_to_wan_server_route():
    tb = make_paper_testbed()
    r = tb.lan_server_route()
    assert r.links[1] is tb.wan_segment[0]
    back = tb.lan_server_route_back()
    assert back.links[1] is tb.wan_segment[1]


def test_testbed_requires_compute_node():
    with pytest.raises(ValueError):
        Testbed(Environment(), n_compute=0)
