"""Tests for GridFTP-style multi-stream transfers."""

import pytest

from repro.net.gridftp import GridFtpTransfer
from repro.net.link import Link, Route
from repro.net.ssh import ScpTransfer
from repro.sim import Environment


def wan_route(env, latency=0.019, bandwidth=30e6):
    return Route([Link(env, latency, bandwidth, name="wan")])


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    env.process(wrapper(env))
    env.run()
    return box


def test_parallel_streams_multiply_throughput():
    env = Environment()
    gftp = GridFtpTransfer(env, wan_route(env), streams=4)
    scp = ScpTransfer(env, wan_route(Environment()))
    assert gftp.effective_bandwidth == pytest.approx(
        4 * scp.effective_bandwidth, rel=0.01)


def test_streams_capped_by_raw_bottleneck():
    env = Environment()
    gftp = GridFtpTransfer(env, wan_route(env, bandwidth=3e6), streams=16)
    assert gftp.effective_bandwidth == pytest.approx(3e6)


def test_transfer_faster_than_single_stream():
    nbytes = 16 * 1024 * 1024
    env1 = Environment()
    single = run(env1, ScpTransfer(env1, wan_route(env1)).transfer(nbytes))
    env4 = Environment()
    parallel = run(env4, GridFtpTransfer(env4, wan_route(env4),
                                         streams=4).transfer(nbytes))
    assert parallel["t"] < single["t"] / 3


def test_transfer_time_analytic_close_to_simulated():
    env = Environment()
    gftp = GridFtpTransfer(env, wan_route(env), streams=4)
    nbytes = 8 * 1024 * 1024
    box = run(env, gftp.transfer(nbytes))
    assert box["t"] == pytest.approx(gftp.transfer_time(nbytes), rel=0.2)
    assert gftp.bytes_transferred == nbytes


def test_single_stream_equals_scp():
    nbytes = 4 * 1024 * 1024
    env1 = Environment()
    scp_t = run(env1, ScpTransfer(env1, wan_route(env1)).transfer(nbytes))
    env2 = Environment()
    one = run(env2, GridFtpTransfer(env2, wan_route(env2),
                                    streams=1).transfer(nbytes))
    assert one["t"] == pytest.approx(scp_t["t"], rel=0.02)


def test_zero_and_tiny_transfers():
    env = Environment()
    gftp = GridFtpTransfer(env, wan_route(env), streams=4)
    box = run(env, gftp.transfer(0))
    assert box["t"] >= 0
    env2 = Environment()
    gftp2 = GridFtpTransfer(env2, wan_route(env2), streams=4)
    run(env2, gftp2.transfer(3))  # fewer bytes than streams
    assert gftp2.bytes_transferred == 3


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        GridFtpTransfer(env, wan_route(env), streams=0)
    gftp = GridFtpTransfer(env, wan_route(env))

    def proc(env):
        yield env.process(gftp.transfer(-1))

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()


def test_channel_accepts_gridftp_transport():
    """The file channel is transport-agnostic: GridFTP drops in for SCP."""
    from tests.core.harness import Rig
    from repro.core.channel import FileChannel

    rig = Rig()
    rig.image.generate_metadata()
    proxy = rig.session.client_proxy
    # Swap the channel's SCP for a 4-stream GridFTP mover.
    proxy.channel.scp = GridFtpTransfer(
        rig.env, rig.testbed.wan_route_back(0), streams=4)

    # Read a non-zero block so the zero-filter does not short-circuit
    # the request before the channel runs.
    mem = rig.image.memory_inode.data
    nonzero = next(i for i in range(mem.n_chunks())
                   if not mem.chunk_is_zero(i))

    def proc(env):
        f = yield env.process(rig.mount.open("/images/golden/mem.vmss"))
        yield env.process(f.read(nonzero * 8192, 8192))

    rig.run(proc(rig.env))
    assert proxy.stats.channel_fetches == 1
    assert proxy.channel.scp.bytes_transferred > 0
