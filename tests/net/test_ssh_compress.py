"""Tests for SSH tunnel, SCP transfer and compression models."""

import zlib

import pytest

from repro.net.compress import GZIP, CompressionModel
from repro.net.link import Link, Route
from repro.net.ssh import DEFAULT_TCP_WINDOW, ScpTransfer, SshTunnel
from repro.sim import Environment


def run_process(env, gen):
    box = {}

    def wrapper(env):
        result = yield env.process(gen)
        box["value"] = result
        box["t"] = env.now

    env.process(wrapper(env))
    env.run()
    return box


# -- SshTunnel -----------------------------------------------------------------

def make_route(env, latency=0.010, bandwidth=1e6):
    return Route([Link(env, latency, bandwidth, name="wire")])


def test_tunnel_adds_cipher_time():
    env = Environment()
    route = make_route(env)
    tun = SshTunnel(env, route, cipher_bps=1e6, pre_established=True)
    box = run_process(env, tun.transmit(10_000))
    plain = route.unloaded_transfer_time(10_000)
    assert box["t"] == pytest.approx(plain + 2 * 10_000 / 1e6)


def test_tunnel_handshake_charged_once():
    env = Environment()
    route = make_route(env)
    tun = SshTunnel(env, route, pre_established=False)

    def proc(env):
        yield env.process(tun.transmit(100))
        first = env.now
        yield env.process(tun.transmit(100))
        return first, env.now

    box = run_process(env, proc(env))
    first, second = box["value"]
    handshake = SshTunnel.HANDSHAKE_ROUND_TRIPS * 0.020 + SshTunnel.HANDSHAKE_CPU
    assert first > handshake
    assert (second - first) < first  # second message cheaper
    assert tun.established


def test_tunnel_rejects_bad_cipher_rate():
    env = Environment()
    with pytest.raises(ValueError):
        SshTunnel(env, make_route(env), cipher_bps=0)


# -- ScpTransfer ---------------------------------------------------------------

def test_scp_window_limited_on_wan():
    """Over a long fat pipe the stream runs at window/RTT, not link rate."""
    env = Environment()
    route = make_route(env, latency=0.019, bandwidth=30e6)
    scp = ScpTransfer(env, route)
    expected_rate = DEFAULT_TCP_WINDOW / 0.038
    assert scp.effective_bandwidth == pytest.approx(expected_rate)
    nbytes = 16 * 1024 * 1024
    box = run_process(env, scp.transfer(nbytes))
    assert box["t"] == pytest.approx(scp.transfer_time(nbytes), rel=0.15)


def test_scp_link_limited_on_lan():
    env = Environment()
    route = make_route(env, latency=0.0001, bandwidth=12.5e6)
    scp = ScpTransfer(env, route)
    assert scp.effective_bandwidth == pytest.approx(12.5e6)
    nbytes = 8 * 1024 * 1024
    box = run_process(env, scp.transfer(nbytes))
    assert box["t"] == pytest.approx(nbytes / 12.5e6, rel=0.10)


def test_parallel_scp_streams_share_fat_pipe_without_collapse():
    """Eight window-limited streams on a fat shared link barely slow down."""
    env = Environment()
    shared = Link(env, latency=0.019, bandwidth=30e6, name="wan")
    times = []

    def one(env):
        scp = ScpTransfer(env, Route([shared]))
        yield env.process(scp.transfer(4 * 1024 * 1024))
        times.append(env.now)

    solo_env = Environment()
    solo_link = Link(solo_env, latency=0.019, bandwidth=30e6)
    solo = run_process(solo_env,
                       ScpTransfer(solo_env, Route([solo_link])).transfer(4 * 1024 * 1024))

    for _ in range(8):
        env.process(one(env))
    env.run()
    assert max(times) < solo["t"] * 2.0  # far from 8x serialization


def test_scp_era_calibration_matches_paper_magnitude():
    """SCP of the full 1.92 GB VM image should take ~19 minutes (paper: 1127 s)."""
    env = Environment()
    route = make_route(env, latency=0.019, bandwidth=30e6)
    scp = ScpTransfer(env, route)
    t = scp.transfer_time(int(1.92e9))
    assert 900 < t < 1400


def test_scp_rejects_negative():
    env = Environment()
    scp = ScpTransfer(env, make_route(env))

    def proc(env):
        yield env.process(scp.transfer(-5))

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()


# -- CompressionModel ----------------------------------------------------------

def test_compressed_size_zero_runs_are_tiny():
    size = GZIP.compressed_size([10 * 1024 * 1024])  # 10 MB of zeros
    assert size < 10 * 1024 * 1024 / 500


def test_compressed_size_random_data_incompressible():
    import numpy as np
    rng = np.random.default_rng(7)
    blob = rng.bytes(256 * 1024)
    size = GZIP.compressed_size([blob])
    assert size > len(blob) * 0.95


def test_compressed_size_matches_real_zlib_for_literals():
    blob = b"abc" * 10_000
    assert GZIP.compressed_size([blob]) == len(zlib.compress(blob, 6))


def test_mixed_chunk_stream():
    blob = b"xyz" * 5_000
    total = GZIP.compressed_size([1024, blob, 2048])
    assert total > 0
    assert total < len(blob) + 3072


def test_ratio_and_times():
    model = CompressionModel("t", compress_bps=10e6, decompress_bps=50e6)
    assert model.compress_time(10e6) == pytest.approx(1.0)
    assert model.decompress_time(50e6) == pytest.approx(1.0)
    assert model.ratio([1024 * 1024], 1024 * 1024) < 0.01
    with pytest.raises(ValueError):
        model.ratio([100], 0)


def test_negative_zero_run_rejected():
    with pytest.raises(ValueError):
        GZIP.compressed_size([-1])


def test_invalid_throughputs_rejected():
    with pytest.raises(ValueError):
        CompressionModel("bad", compress_bps=0, decompress_bps=1)
