"""Tests for the SCP, pure-NFS and staging comparators."""

import pytest

from repro.baselines.purenfs import PureNfsCloneBaseline
from repro.baselines.scp import ScpCloneBaseline
from repro.baselines.staging import StagingBaseline
from repro.net.topology import Testbed
from repro.sim import Environment
from repro.vm.image import VmConfig, VmImage


def make_rig(image_mb=2):
    testbed = Testbed(Environment(), n_compute=1)
    cfg = VmConfig(name="g", memory_mb=image_mb, disk_gb=0.01, seed=31)
    image = VmImage.create(testbed.wan_server.local.fs, "/images/g", cfg)
    return testbed, image


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


def test_scp_clone_transfers_whole_image():
    testbed, image = make_rig()
    baseline = ScpCloneBaseline(testbed)
    result = run(testbed.env, baseline.clone(image, "/clones/scp1"))
    assert result.transfer_seconds > 0
    assert result.resume_seconds > 0
    # Everything was replicated locally, disk included.
    local = testbed.compute[0].local.fs
    assert local.lookup("/clones/scp1/disk.vmdk").size == image.config.disk_bytes
    assert (local.read("/clones/scp1/mem.vmss")
            == image.memory_inode.data.read(0, image.config.memory_bytes))


def test_scp_transfer_time_scales_with_state_size():
    testbed2, small = make_rig(image_mb=2)
    testbed8, big = make_rig(image_mb=64)
    t_small = run(testbed2.env, ScpCloneBaseline(testbed2).clone(
        small, "/c", resume=False)).transfer_seconds
    t_big = run(testbed8.env, ScpCloneBaseline(testbed8).clone(
        big, "/c", resume=False)).transfer_seconds
    assert t_big > t_small


def test_scp_full_size_image_near_paper_number():
    """A 320 MB + 1.6 GB image takes ~19 min over the calibrated WAN."""
    testbed = Testbed(Environment(), n_compute=1)
    cfg = VmConfig(name="g", memory_mb=320, disk_gb=1.6, seed=31)
    image = VmImage.create(testbed.wan_server.local.fs, "/images/g", cfg)
    baseline = ScpCloneBaseline(testbed)
    t = baseline.scp.transfer_time(image.total_state_bytes)
    assert 900 < t < 1400  # paper: 1127 s


def test_purenfs_clone_runs_off_the_mount():
    testbed, image = make_rig()
    from repro.nfs.server import NfsServer
    server = NfsServer(testbed.env, testbed.wan_server.local, fsid="raw")
    baseline = PureNfsCloneBaseline(testbed, server)
    result = run(testbed.env, baseline.clone("/images/g"))
    assert result.total_seconds > 0


def test_purenfs_slower_than_scp_for_full_image():
    """Per-block WAN reads lose to one streamed SCP (paper: 2060 vs 1127)."""
    testbed, image = make_rig(image_mb=8)
    from repro.nfs.server import NfsServer
    server = NfsServer(testbed.env, testbed.wan_server.local, fsid="raw")
    nfs_result = run(testbed.env,
                     PureNfsCloneBaseline(testbed, server).clone("/images/g"))
    testbed2, image2 = make_rig(image_mb=8)
    scp_result = run(testbed2.env, ScpCloneBaseline(testbed2).clone(
        image2, "/clones/s", resume=False))
    # Compare data-movement time for the same memory state: NFS pays a
    # round trip per 8 KB; SCP pays the disk-size stream. For a small
    # image (disk tiny) per-block NFS is far slower per byte.
    per_byte_nfs = nfs_result.total_seconds / image.config.memory_bytes
    per_byte_scp = scp_result.transfer_seconds / image2.total_state_bytes
    assert per_byte_nfs > 2 * per_byte_scp


def test_staging_download_upload_asymmetric():
    testbed, image = make_rig(image_mb=16)
    baseline = StagingBaseline(testbed)
    result = run(testbed.env, baseline.session(image))
    assert result.download_seconds > 0
    assert result.upload_seconds > result.download_seconds


def test_staging_moves_whole_state_regardless_of_use():
    testbed, image = make_rig()
    baseline = StagingBaseline(testbed)
    assert baseline.state_bytes(image) == image.total_state_bytes
