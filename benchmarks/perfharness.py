#!/usr/bin/env python
"""Standalone wall-clock perf harness runner.

Equivalent to ``python -m repro.cli perf`` but runnable directly::

    PYTHONPATH=src python benchmarks/perfharness.py --out BENCH_pr2.json \
        --baseline results/BENCH_pr2_baseline.json

The harness itself lives in :mod:`repro.experiments.perf`: it drives
fixed workloads (cold/warm cloning, a kernel-compile session, a flush
storm), measures wall-clock events/sec and blocks/sec, and asserts the
*simulated* timings are bit-identical to the golden signatures in
``benchmarks/golden_timings.json`` — a hot-path optimization must never
change a simulated result.

This file is also a pytest module: ``pytest benchmarks/perfharness.py``
runs the quick-scale harness and fails on golden drift, which is what
the CI perf-smoke job executes.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))


def test_perf_smoke_quick():
    """Quick-scale harness run: golden simulated times must hold."""
    from repro.experiments import perf
    report = perf.run_harness(["cold_clone", "flush_storm", "clone_storm"],
                              quick=True)
    assert report.golden_ok, "\n".join(report.golden_diffs)
    for name, sample in report.samples.items():
        assert sample.events > 0 and sample.blocks > 0, name


if __name__ == "__main__":
    from repro.cli import main
    sys.exit(main(["perf", *sys.argv[1:]]))
