"""Figure 5: kernel compilation, two consecutive runs (cold then warm).

Paper claims reproduced here:
* run 1 (cold caches): WAN+C shows a large but bounded overhead over
  Local (paper: 84 %);
* run 2 (warm caches): WAN+C overhead drops to ~10 % of Local and close
  to LAN;
* the proxy cache makes WAN+C substantially (>30 %) faster than
  non-cached WAN.
"""

from conftest import once

from repro.analysis.tables import format_figure5
from repro.core.session import Scenario
from repro.experiments.appbench import run_application_benchmark
from repro.workloads.kernelcompile import KernelCompile

SCENARIOS = [Scenario.LOCAL, Scenario.LAN, Scenario.WAN, Scenario.WAN_CACHED]


def test_fig5_kernel_compile(benchmark, save_table):
    results = {}

    def run_all():
        for scenario in SCENARIOS:
            results[scenario.value] = run_application_benchmark(
                scenario, KernelCompile, runs=2)

    once(benchmark, run_all)
    save_table("fig5_kernel", format_figure5(results))

    local = results["Local"]
    lan = results["LAN"]
    wan = results["WAN"]
    wanc = results["WAN+C"]

    # Run 1 (cold): WAN+C pays a substantial, bounded overhead.
    overhead_run1 = wanc.run_total(0) / local.run_total(0) - 1
    assert 0.30 < overhead_run1 < 1.2   # paper: 0.84

    # Run 2 (warm): overhead collapses to within ~12% of Local and LAN.
    assert wanc.run_total(1) / local.run_total(1) < 1.12  # paper: 1.09
    assert abs(wanc.run_total(1) - lan.run_total(1)) / lan.run_total(1) < 0.12

    # WAN+C beats WAN by >30% across the two runs (paper's claim).
    wan_total = wan.run_total(0) + wan.run_total(1)
    wanc_total = wanc.run_total(0) + wanc.run_total(1)
    assert wan_total > wanc_total * 1.30

    # Warm run is never slower than the cold run anywhere.
    for s in SCENARIOS:
        r = results[s.value]
        assert r.run_total(1) <= r.run_total(0) * 1.01
