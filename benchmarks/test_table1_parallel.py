"""Table 1: total time of cloning eight VM images, sequential vs parallel.

The paper's table compares WAN-S1-style sequential cloning against
WAN-P parallel cloning to eight compute servers sharing one image
server, for cold caches (every cloning starts cold) and warm caches:

    WAN-S1: 1056 s cold /  200 s warm
    WAN-P :  150.3 s cold / 32 s warm   (speedup >7x cold, >6x warm)

The parallel win comes from overlapping the per-clone pipeline stages
— image-server gzip, SCP streams, client-side uncompress/resume —
across machines, while the sequential run pays them back to back.
"""

from conftest import once

from repro.analysis.tables import format_table1
from repro.experiments.clonebench import (
    CloneScenario,
    run_cloning_benchmark,
    run_parallel_cloning,
)


def test_table1_parallel_cloning(benchmark, save_table):
    box = {}

    def run_all():
        box["seq_cold"] = run_cloning_benchmark(
            CloneScenario.WAN_S1, cold_between=True).total_seconds
        box["seq_warm"] = run_cloning_benchmark(
            CloneScenario.WAN_S1, warm=True).total_seconds
        box["par_cold"] = run_parallel_cloning().total_seconds
        box["par_warm"] = run_parallel_cloning(warm=True).total_seconds

    once(benchmark, run_all)
    save_table("table1_parallel", format_table1(
        box["seq_cold"], box["seq_warm"], box["par_cold"], box["par_warm"]))

    # Parallel cloning wins by a large factor, cold and warm (the paper
    # reports >7x / >6x; the shared image-server CPU bounds ours lower).
    assert box["par_cold"] < box["seq_cold"] / 2.5
    assert box["par_warm"] < box["seq_warm"] / 4

    # Warm is far cheaper than cold in both arrangements.
    assert box["seq_warm"] < box["seq_cold"] / 2.5
    assert box["par_warm"] < box["par_cold"] / 2.5

    # Magnitudes: parallel cold lands in the paper's regime (~150-250 s
    # for eight 320 MB/1.6 GB images), warm within tens of seconds.
    assert box["par_cold"] < 300
    assert box["par_warm"] < 60
