"""Pipelined proxy I/O benchmark: readahead depth sweep + coalesced
write-back, archived as ``results/pipelined_io.txt``.

Sweeps the proxy's sequential-readahead depth over a cold 8 MB WAN read
(depth 0 is the pre-pipelining demand path) and flushes a dirty 32 MB
file both per-block and with run coalescing.
"""

from conftest import once

from repro.experiments.pipelinedbench import (format_pipelined_io,
                                              run_flush_comparison,
                                              run_read_sweep)


def test_pipelined_io(benchmark, save_table):
    box = {}

    def run_all():
        box["reads"] = run_read_sweep(depths=(0, 1, 4, 8, 16))
        box["flush"] = run_flush_comparison(file_mb=32)

    once(benchmark, run_all)
    reads, flush = box["reads"], box["flush"]
    save_table("pipelined_io", format_pipelined_io(reads, flush))
    # Depth 8 must at least halve the cold sequential read time.
    assert reads[8].seconds * 2 <= reads[0].seconds
    assert reads[8].prefetch_used > 0
    assert reads[8].prefetch_accuracy > 0.8
    # Coalescing must cut the flush to under 25% of the per-block RPCs.
    assert flush.coalesced_rpcs * 4 < flush.per_block_rpcs
    assert flush.coalesced_seconds < flush.per_block_seconds
