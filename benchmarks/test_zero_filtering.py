"""§3.2.2 in-text numbers: zero-block filtering on a VM resume.

"When resuming a 512MB-RAM RedHat 7.3 VM which is suspended in the
post-boot state, the client issues 65,750 NFS reads while 60452 of them
can be filtered out by the above technique."  (60,452 / 65,750 = 92 %.)

This benchmark resumes a 512 MB VM through a metadata-enabled proxy
whose channel actions are disabled (so every block takes the zero-map /
block path) and counts filtered reads.
"""

from conftest import once

from repro.core.metadata import generate_metadata
from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.topology import make_paper_testbed
from repro.vm.image import VmConfig, VmImage
from repro.vm.monitor import VmMonitor


def run_resume():
    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    config = VmConfig(name="postboot", memory_mb=512, disk_gb=0.25,
                      os_name="Red Hat Linux 7.3", persistent=True, seed=73)
    image = VmImage.create(endpoint.export.fs, "/images/postboot", config,
                           zero_fraction=0.92)
    # Zero map only — no file channel — so the counting is pure.
    meta = generate_metadata(endpoint.export.fs, "/images/postboot/mem.vmss",
                             actions=[])
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint)
    monitor = VmMonitor(testbed.env, testbed.compute[0])

    def driver(env):
        yield env.process(monitor.resume(session.mount, "/images/postboot"))

    testbed.env.process(driver(testbed.env))
    testbed.env.run()
    stats = session.client_proxy.stats
    reads_issued = session.mount.rpc.stats.by_proc.get("READ", 0)
    return meta, stats, reads_issued


def test_zero_filtering_ratio(benchmark, save_table):
    box = {}

    def run_all():
        box["meta"], box["stats"], box["reads"] = run_resume()

    once(benchmark, run_all)
    meta, stats, reads = box["meta"], box["stats"], box["reads"]

    memory_reads = 512 * 1024 * 1024 // 8192  # 65,536 blocks
    table = "\n".join([
        "Zero-block filtering on a 512 MB post-boot resume (§3.2.2)",
        "-----------------------------------------------------------",
        f"NFS READ calls issued by the client:  {reads:>7}"
        f"   (paper: 65,750)",
        f"reads filtered as zero-filled:        "
        f"{stats.zero_filtered_reads:>7}   (paper: 60,452)",
        f"filter ratio:                         "
        f"{stats.zero_filtered_reads / memory_reads:>7.1%}   (paper: ~92%)",
        f"zero blocks in the generated map:     {meta.n_zero_blocks:>7}",
    ])
    save_table("zero_filtering", table)

    # The client issues one READ per 8 KB of the 512 MB state (plus a
    # handful for config and metadata-adjacent traffic).
    assert memory_reads <= reads < memory_reads * 1.02

    # ~92% of the memory-state reads never cross the wire.
    ratio = stats.zero_filtered_reads / memory_reads
    assert 0.90 < ratio < 0.94
    assert stats.zero_filtered_reads == meta.n_zero_blocks
