"""Ablations of the design choices DESIGN.md calls out.

Each ablation switches one GVFS mechanism off (or sweeps one knob) and
measures the consequence on a focused micro-experiment, confirming that
every mechanism the paper proposes actually carries its weight in this
reproduction:

* write-back vs write-through proxy cache policy;
* zero-map metadata on/off for a memory-state resume;
* the whole-file channel vs block-by-block fetch of the memory state;
* SSH tunnel cipher overhead on/off;
* proxy cache block size sweep (up to the 32 KB protocol limit).
"""

import pytest
from conftest import once

from repro.core.config import CachePolicy, ProxyCacheConfig
from repro.core.metadata import generate_metadata, metadata_path_for
from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.topology import Testbed, make_paper_testbed
from repro.sim import Environment
from repro.vm.image import VmConfig, VmImage
from repro.vm.monitor import VmMonitor

MB = 1024 * 1024
SMALL_CACHE = ProxyCacheConfig(capacity_bytes=64 * MB, n_banks=32,
                               associativity=4)


def build_rig(metadata=True, policy=CachePolicy.WRITE_BACK,
              image_mb=8, block_size=8192, zero_map=True,
              file_channel=True):
    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/g",
                           VmConfig(name="g", memory_mb=image_mb,
                                    disk_gb=0.01, seed=77))
    if metadata:
        from repro.core.metadata import FILE_CHANNEL_ACTIONS
        generate_metadata(endpoint.export.fs, image.memory_path,
                          actions=FILE_CHANNEL_ACTIONS if file_channel else [],
                          include_zero_map=zero_map)
    cache = ProxyCacheConfig(capacity_bytes=64 * MB, n_banks=32,
                             associativity=4, block_size=block_size,
                             policy=policy)
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=cache,
                                metadata=metadata)
    return testbed, endpoint, image, session


def drive(testbed, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    testbed.env.process(wrapper(testbed.env))
    testbed.env.run()
    return box.get("value"), box["t"]


def timed_resume(**kwargs):
    testbed, endpoint, image, session = build_rig(**kwargs)
    monitor = VmMonitor(testbed.env, testbed.compute[0])

    def job(env):
        t0 = env.now
        yield env.process(monitor.resume(session.mount, "/images/g"))
        return env.now - t0

    value, _ = drive(testbed, job(testbed.env))
    return value, session


def timed_burst_write(policy, nbytes=4 * MB):
    testbed, endpoint, image, session = build_rig(metadata=False,
                                                  policy=policy)

    def job(env):
        f = yield env.process(session.mount.create("/images/g/out.dat"))
        t0 = env.now
        yield env.process(f.write_sync(0, b"w" * nbytes))
        wrote = env.now - t0
        yield env.process(session.flush())
        return wrote

    value, _ = drive(testbed, job(testbed.env))
    return value


def test_ablation_write_policy(benchmark, save_table):
    box = {}

    def run_all():
        box["write_back"] = timed_burst_write(CachePolicy.WRITE_BACK)
        box["write_through"] = timed_burst_write(CachePolicy.WRITE_THROUGH)

    once(benchmark, run_all)
    table = "\n".join([
        "Ablation: proxy cache write policy (4 MB synchronous burst, WAN)",
        f"  write-back   : {box['write_back']:8.2f} s (absorbed locally)",
        f"  write-through: {box['write_through']:8.2f} s (every block pays "
        "the WAN)",
        f"  ratio        : {box['write_through'] / box['write_back']:8.1f}x",
    ])
    save_table("ablation_write_policy", table)
    assert box["write_back"] < box["write_through"] / 10


def test_ablation_zero_map_and_channel(benchmark, save_table):
    box = {}

    def run_all():
        box["full"], _ = timed_resume()                        # both on
        box["no_zero"], _ = timed_resume(zero_map=False)       # channel only
        box["no_channel"], _ = timed_resume(file_channel=False)  # zeros only
        box["none"], _ = timed_resume(metadata=False)          # block path

    once(benchmark, run_all)
    table = "\n".join([
        "Ablation: meta-data handling on an 8 MB memory-state resume (WAN)",
        f"  zero map + file channel : {box['full']:8.2f} s",
        f"  file channel only       : {box['no_zero']:8.2f} s",
        f"  zero map only           : {box['no_channel']:8.2f} s",
        f"  no meta-data (blocks)   : {box['none']:8.2f} s",
    ])
    save_table("ablation_metadata", table)
    # Every mechanism beats the bare block path; zero map is the big
    # win for a zero-rich image; combining them is never worse than
    # the channel alone.
    assert box["full"] < box["none"]
    assert box["no_channel"] < box["none"]
    assert box["full"] <= box["no_zero"] * 1.05


def test_ablation_tunnel_cipher(benchmark, save_table):
    """Cipher CPU on the RPC path: visible but second-order on the WAN."""
    from repro.net.ssh import SshTunnel

    box = {}

    def run_with_cipher(cipher_bps):
        testbed, endpoint, image, session = build_rig(metadata=False,
                                                      image_mb=4)
        # Rewire the session's tunnels with the ablated cipher rate.
        rpc = session.client_proxy.upstream
        rpc.out.cipher_bps = cipher_bps
        rpc.back.cipher_bps = cipher_bps
        monitor = VmMonitor(testbed.env, testbed.compute[0])

        def job(env):
            t0 = env.now
            yield env.process(monitor.resume(session.mount, "/images/g"))
            return env.now - t0

        value, _ = drive(testbed, job(testbed.env))
        return value

    def run_all():
        box["era_cipher"] = run_with_cipher(35e6)
        box["free_cipher"] = run_with_cipher(1e15)

    once(benchmark, run_all)
    table = "\n".join([
        "Ablation: SSH tunnel cipher cost (4 MB block-path resume, WAN)",
        f"  35 MB/s cipher (era)  : {box['era_cipher']:8.2f} s",
        f"  free cipher           : {box['free_cipher']:8.2f} s",
        f"  cipher overhead       : "
        f"{box['era_cipher'] / box['free_cipher'] - 1:8.1%}",
    ])
    save_table("ablation_cipher", table)
    assert box["free_cipher"] < box["era_cipher"]
    # On a 38 ms RTT path the cipher is a small fraction of each call.
    assert box["era_cipher"] < box["free_cipher"] * 1.2


def test_ablation_cache_block_size(benchmark, save_table):
    """Bigger frames amortize round trips on sequential access, up to
    the NFS protocol limit of 32 KB (§3.2.1)."""
    box = {}

    def resume_with_block(bs):
        # Client rsize follows the proxy frame size so requests align.
        from repro.nfs.client import MountOptions
        testbed = make_paper_testbed()
        endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
        VmImage.create(endpoint.export.fs, "/images/g",
                       VmConfig(name="g", memory_mb=4, disk_gb=0.01,
                                seed=78))
        cache = ProxyCacheConfig(capacity_bytes=64 * MB, n_banks=32,
                                 associativity=4, block_size=bs)
        session = GvfsSession.build(
            testbed, Scenario.WAN_CACHED, endpoint=endpoint,
            cache_config=cache, metadata=False,
            mount_options=MountOptions(block_size=bs))
        monitor = VmMonitor(testbed.env, testbed.compute[0], block_size=bs)

        def job(env):
            t0 = env.now
            yield env.process(monitor.resume(session.mount, "/images/g"))
            return env.now - t0

        value, _ = drive(testbed, job(testbed.env))
        return value

    def run_all():
        for bs in (4096, 8192, 16384, 32768):
            box[bs] = resume_with_block(bs)

    once(benchmark, run_all)
    rows = [f"  {bs // 1024:>3} KB blocks: {box[bs]:8.2f} s"
            for bs in sorted(box)]
    save_table("ablation_block_size", "\n".join(
        ["Ablation: proxy/mount block size (4 MB block-path resume, WAN)",
         *rows]))
    assert box[32768] < box[4096] / 2  # fewer round trips win


def test_ablation_cache_capacity_and_associativity(benchmark, save_table):
    """Cache geometry under a working set larger than a small cache:
    capacity misses reappear exactly as §3.2.1 predicts ('the large
    storage capacity of disks implies great reduction on capacity and
    conflict misses'); higher associativity mitigates conflicts."""
    from repro.nfs.client import MountOptions

    WORKING_SET_BLOCKS = 1024            # 8 MB touched twice

    def hit_rate(capacity_bytes, associativity):
        testbed = make_paper_testbed()
        endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
        VmImage.create(endpoint.export.fs, "/images/g",
                       VmConfig(name="g", memory_mb=4, disk_gb=0.05,
                                seed=79))
        cache = ProxyCacheConfig(capacity_bytes=capacity_bytes, n_banks=8,
                                 associativity=associativity,
                                 block_size=8192)
        session = GvfsSession.build(
            testbed, Scenario.WAN_CACHED, endpoint=endpoint,
            cache_config=cache, metadata=False,
            mount_options=MountOptions(cache_bytes=1 << 20))  # tiny kernel cache

        def job(env):
            f = yield env.process(session.mount.open("/images/g/disk.vmdk"))
            for sweep in range(2):
                for b in range(WORKING_SET_BLOCKS):
                    yield env.process(f.read(b * 8192, 8192))

        def driver(env):
            yield env.process(job(env))

        testbed.env.process(driver(testbed.env))
        testbed.env.run()
        stats = session.client_proxy.stats
        total = stats.block_cache_hits + stats.block_cache_misses
        return stats.block_cache_hits / total

    box = {}

    def run_all():
        box["small-1way"] = hit_rate(4 * 1024 * 1024, 1)     # half the set
        box["small-16way"] = hit_rate(4 * 1024 * 1024, 16)
        box["big-1way"] = hit_rate(64 * 1024 * 1024, 1)
        box["big-16way"] = hit_rate(64 * 1024 * 1024, 16)

    once(benchmark, run_all)
    table = "\n".join([
        "Ablation: proxy cache capacity x associativity "
        "(8 MB set, 2 sweeps, hit rate)",
        f"   4 MB,  direct-mapped: {box['small-1way']:7.1%}",
        f"   4 MB, 16-way        : {box['small-16way']:7.1%}",
        f"  64 MB,  direct-mapped: {box['big-1way']:7.1%}",
        f"  64 MB, 16-way        : {box['big-16way']:7.1%}",
        "(an undersized LRU cache thrashes on cyclic sweeps — the",
        " textbook pathology — which is why §3.2.1 leans on disk-sized",
        " capacity rather than cleverness to kill capacity misses)",
    ])
    save_table("ablation_capacity", table)
    # Capacity dominates: a cache bigger than the working set serves
    # the whole second sweep; an undersized one cannot, at any
    # associativity (cyclic sweeps are LRU's worst case).
    assert box["big-16way"] > 0.45
    assert box["big-1way"] > 0.45
    assert box["small-16way"] < 0.1
    assert box["small-1way"] < 0.2
