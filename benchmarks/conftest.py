"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation (§4), prints it, and archives it under ``results/`` so the
run's output can be diffed against EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def save_table():
    """Print a rendered table and archive it under results/<name>.txt."""

    def _save(name: str, table: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
        print("\n" + table)

    return _save


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic discrete-event runs; repeating
    them would only re-measure identical work.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
