"""Scenario benchmarks beyond the numbered figures.

§3.2.3 describes two deployment scenarios in prose; this file measures
both end to end:

* the **persistent dedicated VM** (scenario 1): resume → work →
  suspend → off-line write-back → resume on another compute server;
* the **high-throughput batch** (scenario 2, Condor-style): a bag of
  independent tasks fanned out across compute servers, each in its own
  cloned VM, with per-task write-back flushes — the use case that
  justifies the middleware-driven consistency model of §3.2.1.
"""

from conftest import once

from repro.experiments.persistent import run_persistent_vm_lifecycle
from repro.middleware.imageserver import ImageRequirements
from repro.middleware.scheduler import Task, TaskScheduler
from repro.middleware.sessions import VmSessionManager
from repro.net.topology import make_paper_testbed
from repro.vm.image import GuestFile, VmConfig
from repro.workloads.base import ComputeStep, Phase, ReadStep, Workload, WriteStep

MB = 1024 * 1024


def test_persistent_vm_lifecycle(benchmark, save_table):
    box = {}

    def run_all():
        box["r"] = run_persistent_vm_lifecycle()

    once(benchmark, run_all)
    r = box["r"]
    table = "\n".join([
        "Scenario 1 (§3.2.3): persistent dedicated VM across sessions",
        f"  first resume (meta-data restore)     : "
        f"{r.first_resume_seconds:7.1f} s",
        f"  interactive work                     : {r.work_seconds:7.1f} s",
        f"  suspend (write-back absorbs)         : "
        f"{r.suspend_seconds:7.1f} s",
        f"  off-line flush to image server       : "
        f"{r.offline_flush_seconds:7.1f} s",
        f"  resume on another compute server     : "
        f"{r.second_resume_seconds:7.1f} s",
        f"  virtual disk moved on demand         : "
        f"{r.disk_moved_fraction:7.1%} of {r.disk_bytes_total >> 20} MB",
    ])
    save_table("scenario_persistent", table)
    assert r.disk_moved_fraction < 0.10
    assert r.suspend_seconds < r.offline_flush_seconds


def batch_workload():
    return Workload("analysis", [Phase("work", [
        ReadStep(GuestFile("in/dataset", 4 * MB)),
        ComputeStep(60.0),
        WriteStep(GuestFile("out/result", 1 * MB)),
    ])])


def test_high_throughput_batch(benchmark, save_table):
    box = {}

    def run_batch(n_nodes, n_tasks=8):
        testbed = make_paper_testbed(n_compute=n_nodes,
                                     compute_cpu_speed=2.2)
        middleware = VmSessionManager(testbed)
        middleware.catalog.register(
            "batch-image", VmConfig(name="batch-image", memory_mb=32,
                                    disk_gb=0.1, seed=23))
        scheduler = TaskScheduler(middleware)
        tasks = [Task(name=f"t{i}", user=f"u{i}",
                      workload_factory=batch_workload,
                      requirements=ImageRequirements())
                 for i in range(n_tasks)]

        def driver(env):
            yield env.process(scheduler.run_batch(tasks))

        testbed.env.process(driver(testbed.env))
        testbed.env.run()
        return scheduler

    def run_all():
        box["serial"] = run_batch(1)
        box["farm"] = run_batch(8)

    once(benchmark, run_all)
    serial, farm = box["serial"], box["farm"]
    table = "\n".join([
        "Scenario 2 (§3.2.3): 8 independent tasks, Condor-style",
        f"  1 compute server : makespan {serial.makespan_seconds:7.1f} s",
        f"  8 compute servers: makespan {farm.makespan_seconds:7.1f} s",
        f"  scale-out speedup: "
        f"{serial.makespan_seconds / farm.makespan_seconds:7.2f}x",
        f"  mean instantiation per task (8 nodes): "
        f"{sum(r.instantiation_seconds for r in farm.results) / 8:7.1f} s",
    ])
    save_table("scenario_batch", table)
    assert farm.makespan_seconds < serial.makespan_seconds / 3
    assert len(farm.results) == 8
