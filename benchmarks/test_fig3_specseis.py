"""Figure 3: SPECseis benchmark execution times.

Paper claims reproduced here:
* phase 4 (compute-intensive) is within ~10 % across all scenarios;
* phase 1 (I/O-intensive trace creation) is ~2.1x faster in WAN+C than
  in WAN, thanks to write-back proxy caching;
* the proxy cache brings the total WAN execution time down ~33 %.
"""

from conftest import once

from repro.analysis.tables import format_figure3
from repro.core.session import Scenario
from repro.experiments.appbench import run_application_benchmark
from repro.workloads.specseis import SpecSeis

SCENARIOS = [Scenario.LOCAL, Scenario.LAN, Scenario.WAN, Scenario.WAN_CACHED]


def test_fig3_specseis(benchmark, save_table):
    results = {}

    def run_all():
        for scenario in SCENARIOS:
            results[scenario.value] = run_application_benchmark(
                scenario, SpecSeis, runs=1)

    once(benchmark, run_all)
    save_table("fig3_specseis", format_figure3(results))

    local = results["Local"]
    wan = results["WAN"]
    wanc = results["WAN+C"]

    # Phase 4 within ~10% across scenarios (compute-bound).
    p4 = [results[s.value].phase("phase4") for s in SCENARIOS]
    assert max(p4) / min(p4) < 1.12

    # Phase 1: WAN+C beats WAN by roughly the paper's factor 2.1.
    ratio = wan.phase("phase1") / wanc.phase("phase1")
    assert 1.6 < ratio < 2.8

    # Total: proxy cache cuts WAN time by >=25% (paper: 33%).
    assert wanc.run_total() < wan.run_total() * 0.75

    # Sanity ordering: Local <= LAN << WAN.
    assert local.run_total() <= results["LAN"].run_total()
    assert results["LAN"].run_total() < wan.run_total()
