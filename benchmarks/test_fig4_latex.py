"""Figure 4: LaTeX interactive benchmark.

Paper claims reproduced here:
* first iteration: ~12 s on Local/LAN, hundreds of seconds over the
  WAN (225.67 s WAN / 217.33 s WAN+C) — but far below a full-state
  download (2818 s);
* iterations 2-20: WAN+C approaches Local (within ~8 %) and clearly
  beats non-cached WAN (~54 % faster);
* flushing the dirty write-back blocks takes ~160 s, far below the
  4633 s upload of the entire state.
"""

from conftest import once

from repro.analysis.tables import format_figure4
from repro.baselines.staging import StagingBaseline
from repro.core.session import Scenario
from repro.experiments.appbench import APP_VM_CONFIG, run_application_benchmark
from repro.net.topology import make_paper_testbed
from repro.vm.image import VmImage
from repro.workloads.latex import LatexBenchmark

SCENARIOS = [Scenario.LOCAL, Scenario.LAN, Scenario.WAN, Scenario.WAN_CACHED]


def mean_rest(result):
    rest = [p.seconds for p in result.runs[0].phases[1:]]
    return sum(rest) / len(rest)


def test_fig4_latex(benchmark, save_table):
    results = {}
    staging = {}

    def run_all():
        for scenario in SCENARIOS:
            results[scenario.value] = run_application_benchmark(
                scenario, LatexBenchmark, runs=1)
        # Full-state staging comparator (the 2818 s / 4633 s framing).
        testbed = make_paper_testbed()
        image = VmImage.create(testbed.wan_server.local.fs, "/images/appvm",
                               APP_VM_CONFIG)
        baseline = StagingBaseline(testbed)
        box = {}

        def driver(env):
            box["result"] = yield env.process(baseline.session(image))

        testbed.env.process(driver(testbed.env))
        testbed.env.run()
        staging["result"] = box["result"]

    once(benchmark, run_all)
    stage = staging["result"]
    save_table("fig4_latex", format_figure4(
        results, staging_download=stage.download_seconds,
        staging_upload=stage.upload_seconds))

    local = results["Local"]
    wan = results["WAN"]
    wanc = results["WAN+C"]

    first_local = local.runs[0].phases[0].seconds
    first_wan = wan.runs[0].phases[0].seconds
    first_wanc = wanc.runs[0].phases[0].seconds

    # First iteration: WAN startup latency is an order of magnitude
    # above Local, yet far below full-state staging.
    assert first_wan > 8 * first_local
    assert first_wan < stage.download_seconds
    assert abs(first_wanc - first_wan) / first_wan < 0.25

    # Iterations 2-20: WAN+C within ~15% of Local; >=35% faster than WAN.
    assert abs(mean_rest(wanc) - mean_rest(local)) / mean_rest(local) < 0.15
    assert mean_rest(wanc) < mean_rest(wan) * 0.65

    # Write-back flush far cheaper than uploading the entire state.
    assert 0 < wanc.flush_seconds < stage.upload_seconds / 4
