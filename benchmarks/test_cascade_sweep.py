"""Cascade depth x eviction-policy sweep (PR 5's BENCH table).

Claims checked here (quick scale; the archived BENCH_pr5.json carries
the full-scale sweep):

* Every intermediate level of a cold-clone cascade serves hits — the
  tiered-restart discipline means a depth-d cascade absorbs a tier-j
  cold restart from tier j+1.
* Scan-resistant policies (2Q, LFU) beat LRU at the capacity-
  constrained first intermediate level, where one-shot scan images
  contend with the hot golden image.
* Depth-1 and depth-2 cascades are bit-identical in simulated time to
  the plain caching proxy and the literal SecondLevelCache.
"""

from conftest import once

from repro.experiments.cascadebench import (
    check_report,
    format_report,
    run_cascadebench,
)


def _ratio(cell, level):
    return next(row["hit_ratio"] for row in cell["levels"]
                if row["level"] == level)


def test_cascade_sweep(benchmark, save_table):
    box = {}

    def run_all():
        box["report"] = run_cascadebench(quick=True)

    once(benchmark, run_all)
    report = box["report"]
    save_table("cascade_sweep", format_report(report))

    # The smoke gate's guarantees hold.
    assert check_report(report) == []

    cells = {(c["workload"], c["depth"], c["policy"]): c
             for c in report["cells"]}

    # Every cold-clone intermediate level serves hits, at every depth.
    for depth in (2, 3, 4):
        for policy in ("lru", "lfu", "2q"):
            cell = cells["cold_clone", depth, policy]
            for level in range(2, depth + 1):
                assert _ratio(cell, level) > 0.0

    # Scan resistance: 2Q and LFU retain the hot image at the
    # constrained level where LRU lets one-shot scans displace it.
    for depth in (2, 3, 4):
        lru = _ratio(cells["cold_clone", depth, "lru"], 2)
        assert _ratio(cells["cold_clone", depth, "2q"], 2) > lru
        assert _ratio(cells["cold_clone", depth, "lfu"], 2) > lru

    # The cascade machinery is pure generalization.
    eq = report["equivalence"]
    assert eq["depth1"]["clone_seconds_identical"]
    assert eq["depth1"]["total_identical"]
    assert eq["depth2"]["clone_seconds_identical"]
    assert eq["depth2"]["total_identical"]
    assert eq["depth2"]["level_stats_identical"]
