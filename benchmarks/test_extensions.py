"""Extensions benchmark: the paper's §6 future-work features.

The paper names three directions for future work; all are implemented
here and measured against the base system:

* **profile-driven prefetch** — record an application's access profile,
  then warm a fresh session's proxy cache with pipelined fetches before
  the application starts;
* **GridFTP-style parallel streams** for the file-based data channel;
* **checkpoint/migration** of a live VM between compute servers.

Plus the §3.2.1 option of **sharing a read-only proxy cache** between
sessions on one host.
"""

from conftest import once

from repro.core.profiler import AccessProfiler, Prefetcher
from repro.core.blockcache import ProxyBlockCache
from repro.core.config import ProxyCacheConfig
from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.gridftp import GridFtpTransfer
from repro.net.ssh import ScpTransfer
from repro.net.topology import make_paper_testbed
from repro.vm.image import GuestFile, VmConfig, VmImage
from repro.vm.migration import MigrationManager
from repro.vm.monitor import VirtualMachine, VmMonitor

MB = 1024 * 1024
SMALL_CACHE = ProxyCacheConfig(capacity_bytes=256 * MB, n_banks=64,
                               associativity=8)


def build(n_compute=1, image_mb=16, metadata=True, seed=91):
    testbed = make_paper_testbed(n_compute=n_compute)
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/app",
                           VmConfig(name="app", memory_mb=image_mb,
                                    disk_gb=0.25, persistent=False,
                                    seed=seed))
    if metadata:
        image.generate_metadata()
    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i,
                                  cache_config=SMALL_CACHE)
                for i in range(n_compute)]
    return testbed, endpoint, image, sessions


def drive(testbed, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)
        box["t"] = env.now

    testbed.env.process(wrapper(testbed.env))
    testbed.env.run()
    return box.get("value"), box["t"]


WORKING_SET = [GuestFile("app/binaries", 12 * MB),
               GuestFile("app/dataset", 20 * MB)]


def app_first_touch(env, session, testbed):
    """The cold first-touch phase of an application in a VM."""
    f = yield env.process(session.mount.open("/images/app/disk.vmdk"))
    vm = VirtualMachine(env, testbed.compute[0],
                        VmConfig(name="app", memory_mb=16, disk_gb=0.25,
                                 persistent=True, seed=91), f, redo=None)
    t0 = env.now
    for gf in WORKING_SET:
        yield env.process(vm.read_guest_file(gf))
    return env.now - t0


def test_extension_prefetch(benchmark, save_table):
    box = {}

    def run_all():
        # Session 1: record the profile while the application runs cold.
        testbed, _, _, (session,) = build(metadata=False)
        profiler = AccessProfiler("app")
        session.client_proxy.read_observers.append(profiler.observe)
        demand, _ = drive(testbed,
                          app_first_touch(testbed.env, session, testbed))
        profile = profiler.stop()

        # Session 2 (fresh everything): prefetch, then run.
        testbed2, _, _, (session2,) = build(metadata=False)

        def prefetched(env):
            prefetcher = Prefetcher(env, session2.client_proxy,
                                    concurrency=8)
            t0 = env.now
            yield env.process(prefetcher.prefetch(profile))
            prefetch_time = env.now - t0
            run_time = yield from app_first_touch(env, session2, testbed2)
            return prefetch_time, run_time

        (prefetch_time, run_time), _ = drive(testbed2,
                                             prefetched(testbed2.env))
        box.update(demand=demand, profile=profile,
                   prefetch=prefetch_time, run=run_time)

    once(benchmark, run_all)
    table = "\n".join([
        "Extension: profile-driven prefetch (32 MB first-touch set, WAN)",
        f"  cold demand-paged first touch : {box['demand']:8.1f} s",
        f"  pipelined prefetch (8-deep)   : {box['prefetch']:8.1f} s",
        f"  first touch after prefetch    : {box['run']:8.1f} s",
        f"  end-to-end improvement        : "
        f"{box['demand'] / (box['prefetch'] + box['run']):8.1f}x",
        f"  profile size                  : {box['profile'].n_blocks} blocks",
    ])
    save_table("ext_prefetch", table)
    assert box["run"] < box["demand"] / 20         # warm run is ~free
    assert box["prefetch"] + box["run"] < box["demand"] / 3


def test_extension_gridftp_channel(benchmark, save_table):
    box = {}

    def fetch_time(transport_factory):
        testbed, _, image, (session,) = build(image_mb=64)
        proxy = session.client_proxy
        proxy.channel.scp = transport_factory(testbed)
        mem = image.memory_inode.data
        nonzero = next(i for i in range(mem.n_chunks())
                       if not mem.chunk_is_zero(i))

        def job(env):
            f = yield env.process(session.mount.open("/images/app/mem.vmss"))
            t0 = env.now
            yield env.process(f.read(nonzero * 8192, 8192))
            return env.now - t0

        value, _ = drive(testbed, job(testbed.env))
        return value

    def run_all():
        box["scp"] = fetch_time(
            lambda tb: ScpTransfer(tb.env, tb.wan_route_back(0)))
        box["gridftp"] = fetch_time(
            lambda tb: GridFtpTransfer(tb.env, tb.wan_route_back(0),
                                       streams=4))

    once(benchmark, run_all)
    table = "\n".join([
        "Extension: GridFTP parallel streams on the file channel "
        "(64 MB state)",
        f"  1 SCP stream   : {box['scp']:8.1f} s to first byte served",
        f"  4 streams      : {box['gridftp']:8.1f} s",
        f"  improvement    : {box['scp'] / box['gridftp']:8.2f}x",
    ])
    save_table("ext_gridftp", table)
    assert box["gridftp"] < box["scp"]


def test_extension_migration(benchmark, save_table):
    box = {}

    def run_all():
        testbed, endpoint, image, sessions = build(n_compute=2,
                                                   image_mb=64, seed=92)
        monitors = [VmMonitor(testbed.env, testbed.compute[i])
                    for i in range(2)]
        manager = MigrationManager(testbed.env, monitors[0], sessions[0],
                                   monitors[1], sessions[1])

        def job(env):
            vm = yield from monitors[0].resume(sessions[0].mount,
                                               "/images/app")
            result = yield from manager.migrate(vm, "/images/app",
                                                dest_dir="/migrated/app")
            return result

        result, _ = drive(testbed, job(testbed.env))
        scp = ScpTransfer(testbed.env, testbed.wan_route(0))
        box["result"] = result
        box["staging"] = 2 * scp.transfer_time(image.total_state_bytes)

    once(benchmark, run_all)
    result = box["result"]
    rows = [f"    {k:22s}: {v:7.1f} s" for k, v in result.phases.items()
            if not k.startswith("instantiate.")]
    table = "\n".join([
        "Extension: VM migration between compute servers (64 MB memory)",
        f"  downtime (suspend -> resumed on destination): "
        f"{result.downtime_seconds:.1f} s",
        *rows,
        f"  comparator: raw state out+in at one WAN stream: "
        f"{box['staging']:.1f} s",
    ])
    save_table("ext_migration", table)
    assert result.vm.running
    assert result.downtime_seconds < box["staging"]


def test_extension_shared_cache(benchmark, save_table):
    box = {}

    def run_all():
        # Three sessions on one host touch the same golden working set.
        def total_forwarded(shared: bool):
            testbed, endpoint, image, (first,) = build(metadata=False,
                                                       image_mb=8)
            shared_cache = None
            if shared:
                shared_cache = ProxyBlockCache(
                    testbed.env, testbed.compute[0].local, SMALL_CACHE,
                    name="shared-ro", read_only=True)
            sessions = [GvfsSession.build(
                testbed, Scenario.WAN_CACHED, endpoint=endpoint,
                cache_config=SMALL_CACHE,
                shared_block_cache=shared_cache) for _ in range(3)]

            def job(env):
                for session in sessions:
                    f = yield env.process(
                        session.mount.open("/images/app/disk.vmdk"))
                    for b in range(256):      # 2 MB working set each
                        yield env.process(f.read(b * 8192, 8192))

            _, t = drive(testbed, job(testbed.env))
            forwarded = sum(s.client_proxy.stats.forwarded
                            for s in sessions)
            return forwarded, t

        box["private"], box["private_t"] = total_forwarded(False)
        box["shared"], box["shared_t"] = total_forwarded(True)

    once(benchmark, run_all)
    table = "\n".join([
        "Extension: shared read-only proxy cache (3 sessions, one host)",
        f"  private caches : {box['private']:6d} calls forwarded upstream, "
        f"{box['private_t']:7.1f} s",
        f"  shared cache   : {box['shared']:6d} calls forwarded upstream, "
        f"{box['shared_t']:7.1f} s",
        f"  WAN traffic saved: "
        f"{1 - box['shared'] / box['private']:6.1%}",
    ])
    save_table("ext_shared_cache", table)
    assert box["shared"] < box["private"] / 2
    assert box["shared_t"] < box["private_t"]
