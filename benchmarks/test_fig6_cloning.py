"""Figure 6: VM cloning times for a sequence of eight images.

Paper claims reproduced here (320 MB memory / 1.6 GB disk images):
* GVFS with all extensions clones in well under 160 s cold;
* clones repeated against warm local caches finish within ~25 s
  (WAN-S1), and within ~80 s off a warm second-level LAN cache
  (WAN-S3);
* full-image SCP copying (~1127 s) and plain NFS (~2060 s) are both
  massively slower.
"""

from conftest import once

from repro.analysis.tables import format_figure6
from repro.baselines.purenfs import PureNfsCloneBaseline
from repro.baselines.scp import ScpCloneBaseline
from repro.experiments.clonebench import (
    CLONE_IMAGE_ZERO_FRACTION,
    CLONE_VM_CONFIG,
    CloneScenario,
    _cloning_testbed,
    run_cloning_benchmark,
)
from repro.nfs.server import NfsServer
from repro.vm.image import VmImage

SCENARIOS = [CloneScenario.LOCAL, CloneScenario.WAN_S1,
             CloneScenario.WAN_S2, CloneScenario.WAN_S3]


def run_baselines():
    """SCP and plain-NFS comparators on the full-size image."""
    testbed = _cloning_testbed(n_compute=1)
    image = VmImage.create(testbed.wan_server.local.fs, "/images/golden",
                           CLONE_VM_CONFIG,
                           zero_fraction=CLONE_IMAGE_ZERO_FRACTION)
    box = {}

    def driver(env):
        scp = ScpCloneBaseline(testbed)
        box["scp"] = (yield env.process(
            scp.clone(image, "/clones/scp"))).total_seconds

    testbed.env.process(driver(testbed.env))
    testbed.env.run()

    testbed2 = _cloning_testbed(n_compute=1)
    VmImage.create(testbed2.wan_server.local.fs, "/images/golden",
                   CLONE_VM_CONFIG, zero_fraction=CLONE_IMAGE_ZERO_FRACTION)
    server = NfsServer(testbed2.env, testbed2.wan_server.local, fsid="raw")

    def driver2(env):
        purenfs = PureNfsCloneBaseline(testbed2, server)
        box["purenfs"] = (yield env.process(
            purenfs.clone("/images/golden"))).total_seconds

    testbed2.env.process(driver2(testbed2.env))
    testbed2.env.run()
    return box["scp"], box["purenfs"]


def test_fig6_cloning(benchmark, save_table):
    results = {}
    baselines = {}

    def run_all():
        for scenario in SCENARIOS:
            results[scenario.value] = run_cloning_benchmark(scenario)
        baselines["scp"], baselines["purenfs"] = run_baselines()

    once(benchmark, run_all)
    save_table("fig6_cloning", format_figure6(
        results, scp_seconds=baselines["scp"],
        purenfs_seconds=baselines["purenfs"]))

    s1 = results["WAN-S1"].clone_seconds
    s2 = results["WAN-S2"].clone_seconds
    s3 = results["WAN-S3"].clone_seconds
    local = results["Local"].clone_seconds

    # First clone of a new image stays under the paper's 160 s bound.
    assert s1[0] < 160
    assert all(t < 160 for t in s2)

    # Subsequent clones of a cached image finish within ~25 s.
    assert all(t < 25 for t in s1[1:])

    # Second-level LAN cache: cheaper than WAN-cold, dearer than local-warm.
    assert all(t < 80 for t in s3)
    assert all(t < s2[i] for i, t in enumerate(s3))
    assert s3[0] > s1[1]

    # Baselines: SCP ~20 minutes, plain NFS slower still (paper: 1127 /
    # 2060 s); GVFS cloning beats both by a large factor.
    assert 900 < baselines["scp"] < 1500
    assert baselines["purenfs"] > baselines["scp"]
    assert s1[0] < baselines["scp"] / 5

    # Local cloning is cheap and flat.
    assert max(local) < 60
